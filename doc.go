// Package repro is a pure-Go, stdlib-only reproduction of the systems and
// experiments described in "Large Language Models: Principles and Practice"
// (the LLM tutorial literature): statistical language models, the
// transformer recipe, scaling laws, in-context learning, and
// interpretability probes.
//
// Layout:
//
//   - llm is the public API: training (including the data-parallel trainer),
//     the unified generation API (Gen/Stream with functional options over
//     any LanguageModel backend), the batched generation Server with
//     per-token streaming, and the evaluation harness. Start with its
//     Example functions.
//   - internal/ holds the substrates: the corpus → tokenizer → transformer →
//     train → sample → eval pipeline plus the numerical stack (mathx,
//     tensor, autograd, nn), the backend-agnostic model contract (lm), and
//     the serving engine (serve).
//   - cmd/ has the binaries: llm-train, llm-generate (any backend,
//     streaming), llm-bench, llm-serve (the HTTP generation service with
//     SSE streaming), and scaling-laws.
//   - The root-level benchmarks regenerate every table and figure of the
//     paper's evaluation and measure the training/serving hot paths.
//
// DESIGN.md maps each package and indexes the experiments E1-E18 behind the
// root benchmarks; EXPERIMENTS.md explains how to run every binary and
// benchmark and records measured results.
package repro
