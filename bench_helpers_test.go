package repro_test

import (
	"strings"

	"repro/internal/embed"
	"repro/internal/grammar"
	"repro/internal/mathx"
	"repro/internal/probe"
)

// embedVocab, embedBuild, embedQuads assemble the E6 embedding pipeline.
func embedVocab(lines []string) *embed.Vocabulary { return embed.NewVocabulary(lines) }

func embedBuild(lines []string, v *embed.Vocabulary) *embed.Embeddings {
	return embed.FromMatrix(v, embed.PPMI(embed.Cooccurrence(lines, v, 4)))
}

func embedQuads() []embed.AnalogyQuad { return embed.StandardQuads() }

// structuralData builds E10 probe data where an exact solution exists: tree
// distance between leaves equals the squared Euclidean distance between
// root-path edge-indicator vectors.
func structuralData(n int, rng *mathx.RNG) []probe.Sentence {
	g := grammar.Arithmetic()
	const signalDim, noiseDim = 20, 8
	var out []probe.Sentence
	for len(out) < n {
		tr := g.Generate(rng, 8)
		leaves := tr.Leaves()
		if len(leaves) < 3 || len(leaves) > 9 {
			continue
		}
		d := grammar.LeafDistances(tr)
		paths := edgePaths(tr)
		ok := true
		emb := make([][]float64, len(leaves))
		for i, path := range paths {
			v := make([]float64, signalDim+noiseDim)
			for _, e := range path {
				if e >= signalDim {
					ok = false
					break
				}
				v[e] = 1
			}
			for j := signalDim; j < signalDim+noiseDim; j++ {
				v[j] = rng.Norm() * 0.05
			}
			emb[i] = v
		}
		if !ok {
			continue
		}
		out = append(out, probe.Sentence{Embeddings: emb, Distances: d})
	}
	return out
}

func edgePaths(t *grammar.Tree) [][]int {
	var paths [][]int
	edge := 0
	var walk func(n *grammar.Tree, acc []int)
	walk = func(n *grammar.Tree, acc []int) {
		if len(n.Children) == 0 {
			paths = append(paths, append([]int(nil), acc...))
			return
		}
		for _, c := range n.Children {
			id := edge
			edge++
			walk(c, append(acc, id))
		}
	}
	walk(t, nil)
	return paths
}

// imitator models the few-shot/zero-shot asymmetry of E13: it can only
// solve a task whose transformation is demonstrated in the prompt.
type imitator struct{}

func (imitator) Complete(prompt string, maxTokens int) string {
	lines := strings.Split(strings.TrimSpace(prompt), "\n")
	q := strings.Fields(lines[len(lines)-1])
	if len(lines) < 2 {
		return "???"
	}
	ex := strings.Fields(lines[0])
	arrow := -1
	for i, w := range ex {
		if w == "->" {
			arrow = i
		}
	}
	if arrow < 0 || arrow+1 >= len(ex) {
		return "???"
	}
	in := ex[1:arrow]
	out := ex[arrow+1:]
	reversed := len(in) == len(out)
	for i := range in {
		if len(out) != len(in) || out[len(in)-1-i] != in[i] {
			reversed = false
			break
		}
	}
	mid := q[1 : len(q)-1]
	if reversed && ex[0] == "reverse" {
		r := make([]string, len(mid))
		for i := range mid {
			r[len(mid)-1-i] = mid[i]
		}
		return strings.Join(r, " ")
	}
	return strings.Join(mid, " ")
}
