// Benchmarks regenerating every table and figure of the paper (experiment
// ids E1-E15 per DESIGN.md). These are experiment drivers, not
// micro-benchmarks: each iteration runs the full workload and reports the
// scientific quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation series alongside timing.
package repro_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/icl"
	"repro/internal/interp"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/probe"
	"repro/internal/rnn"
	"repro/internal/sample"
	"repro/internal/scaling"
	"repro/internal/serve"
	"repro/internal/tokenizer"
	"repro/internal/train"
	"repro/internal/transformer"
)

// BenchmarkTable1ModelSizes is E1: the 12·D·p² estimate against every
// published row of Table 1. Reports the worst-case estimate/published ratio.
func BenchmarkTable1ModelSizes(b *testing.B) {
	worst := 1.0
	for i := 0; i < b.N; i++ {
		for _, r := range scaling.Table1() {
			est := r.Estimate()
			if est == 0 {
				continue
			}
			ratio := est / r.PublishedParams
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio > worst {
				worst = ratio
			}
		}
	}
	b.ReportMetric(worst, "worst-ratio")
}

// BenchmarkFigure2ScalingLaws is E2: the parameter/data sweep with power-law
// and Eq. 4 fits. Reports the fitted exponents.
func BenchmarkFigure2ScalingLaws(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := scaling.DefaultSweep()
		points, err := scaling.RunSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fp := scaling.FitLossVsParams(points)
		fd := scaling.FitLossVsData(points)
		b.ReportMetric(fp.Alpha, "alphaP")
		b.ReportMetric(fd.Alpha, "alphaD")
		b.ReportMetric(fp.R2, "R2-P")
	}
}

// BenchmarkFigure1WordProblems is E3: chain-of-thought vs direct training on
// the running-chain word problems. Reports both held-out solve rates.
func BenchmarkFigure1WordProblems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := eval.DefaultCoT()
		cfg.Steps = 800 // bench-scale: the full test run uses 1500
		cfg.TrainProblems = 300
		res, err := eval.ChainOfThoughtExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CoTAccuracy, "cot-acc")
		b.ReportMetric(res.DirectAccuracy, "direct-acc")
	}
}

// BenchmarkFigure3Parsing is E4: CYK parsing of the Figure 3 arithmetic
// grammar, including the y+1*x precedence fixture, across generated
// expressions.
func BenchmarkFigure3Parsing(b *testing.B) {
	g := grammar.Arithmetic()
	cnf := g.ToCNF()
	rng := mathx.NewRNG(1)
	sentences := make([][]string, 200)
	for i := range sentences {
		sentences[i] = g.GenerateSentence(rng, 10)
	}
	b.ResetTimer()
	parsed := 0
	for i := 0; i < b.N; i++ {
		if _, ok := cnf.Parse([]string{"y", "+", "1", "*", "x"}); !ok {
			b.Fatal("fixture failed to parse")
		}
		if cnf.Recognize(sentences[i%len(sentences)]) {
			parsed++
		}
	}
	b.ReportMetric(float64(parsed)/float64(b.N), "parse-rate")
}

// BenchmarkPerplexityLadder is E5: n-gram → LSTM → transformer held-out
// perplexity on one corpus. Reports each rung.
func BenchmarkPerplexityLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(9)
		trainLines := corpus.PCFGText(grammar.TinyEnglish(), 500, 10, rng)
		testLines := corpus.PCFGText(grammar.TinyEnglish(), 100, 10, rng.Split())
		ladder, err := core.PerplexityLadder(trainLines, testLines, core.DefaultLadder())
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ladder {
			b.ReportMetric(e.Perplexity, "ppl-"+e.Name)
		}
	}
}

// BenchmarkAnalogyAccuracy is E6: Eq. 9 analogy accuracy of co-occurrence
// embeddings, full-dimension vs PCA-compressed.
func BenchmarkAnalogyAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(4)
		lines := corpus.AnalogyCorpus(4000, rng)
		vocab := embedVocab(lines)
		e := embedBuild(lines, vocab)
		quads := embedQuads()
		full := e.AnalogyAccuracy(quads)
		small := e.Compress(12, mathx.NewRNG(5)).AnalogyAccuracy(quads)
		b.ReportMetric(full, "acc-full")
		b.ReportMetric(small, "acc-pca12")
	}
}

// BenchmarkGrokkingModularArithmetic is E7: delayed generalization on
// modular addition with weight decay. Reports the step gap between train
// and test accuracy crossing 45%.
func BenchmarkGrokkingModularArithmetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const modulus = 13
		rng := mathx.NewRNG(13)
		eqs := corpus.ModularAddition(modulus)
		trainEqs, testEqs := corpus.SplitEquations(eqs, 0.5, rng)
		toBatch := func(eqs []corpus.ModEquation) []train.Batch {
			out := make([]train.Batch, len(eqs))
			for i, e := range eqs {
				ids := corpus.EncodeEquation(e, modulus)
				out[i] = train.Batch{Input: ids[:4], Target: []int{-1, -1, -1, ids[4]}}
			}
			return out
		}
		trainB, testB := toBatch(trainEqs), toBatch(testEqs)
		model := transformer.MustNew(transformer.Config{
			Vocab: corpus.ModVocabSize(modulus), Dim: 48, Layers: 1, Heads: 4,
			Window: 8, Pos: transformer.PosLearned, Act: nn.GELU,
		}, mathx.NewRNG(14))
		res, err := train.Run(model, trainB, train.Config{
			Steps: 1200, BatchSize: 16, Schedule: train.Constant(0.002),
			Optimizer: train.NewAdam(0.3), ClipNorm: 1,
			EvalEvery: 100, EvalTrain: trainB, EvalTest: testB,
			AccuracyPositions: []int{0},
		})
		if err != nil {
			b.Fatal(err)
		}
		trainStep, testStep, gap := train.GrokkingGap(res.Curve, 0.45)
		b.ReportMetric(float64(trainStep), "train-step")
		b.ReportMetric(float64(testStep), "test-step")
		b.ReportMetric(float64(gap), "gap-steps")
	}
}

// BenchmarkInductionHead is E8: train on repeated sequences and report the
// best induction-head score plus repeat accuracy.
func BenchmarkInductionHead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(42)
		vocab, seqLen := 8, 16
		model := transformer.MustNew(transformer.Config{
			Vocab: vocab, Dim: 32, Layers: 2, Heads: 2, Window: seqLen,
			Pos: transformer.PosLearned, Act: nn.GELU,
		}, rng)
		seqs := corpus.RepeatedBigramCorpus(60, seqLen, vocab, rng)
		var data []train.Batch
		for _, s := range seqs {
			tg := make([]int, len(s)-1)
			for j := range tg {
				if j+1 >= len(s)/2 {
					tg[j] = s[j+1]
				} else {
					tg[j] = -1
				}
			}
			data = append(data, train.Batch{Input: s[:len(s)-1], Target: tg})
		}
		if _, err := train.Run(model, data, train.Config{
			Steps: 250, BatchSize: 4, Schedule: train.Constant(0.002),
			Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
		best := interp.BestHead(interp.ScoreHeads(model, seqs[:20]))
		b.ReportMetric(best.Score, "induction-score")
		b.ReportMetric(interp.RepeatAccuracy(model, seqs), "repeat-acc")
	}
}

// BenchmarkOthelloProbe is E9: world-model probing on Othello-GPT.
func BenchmarkOthelloProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := probe.DefaultOthello()
		cfg.Games = 100
		cfg.Steps = 300
		res, err := probe.RunOthello(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LegalMoveRate, "legal-rate")
		b.ReportMetric(res.ProbeAccuracy, "probe-acc")
		b.ReportMetric(res.MajorityBaseline, "baseline")
		b.ReportMetric(res.InterventionFlipRate, "flip-rate")
	}
}

// BenchmarkStructuralProbe is E10: tree-distance recovery by low-rank
// projection; reports correlation at two ranks.
func BenchmarkStructuralProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(5)
		data := structuralData(30, rng)
		low, err := probe.TrainStructural(data, 3, 200, 0.05, rng)
		if err != nil {
			b.Fatal(err)
		}
		high, err := probe.TrainStructural(data, 12, 200, 0.05, rng)
		if err != nil {
			b.Fatal(err)
		}
		cl, _ := low.Evaluate(data)
		ch, _ := high.Evaluate(data)
		b.ReportMetric(cl, "corr-rank3")
		b.ReportMetric(ch, "corr-rank12")
	}
}

// BenchmarkICLRegression is E11: in-context regression vs the explicit
// computational models.
func BenchmarkICLRegression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(9)
		m := icl.MustNewModel(1, 32, 2, 2, 8, rng)
		m.Train(800, 8, 8, 0.3, 0.003, rng)
		res := icl.Compare(m, 100, 6, 0.3, mathx.NewRNG(10))
		b.ReportMetric(res["transformer"], "mse-transformer")
		b.ReportMetric(res["ridge"], "mse-ridge")
		b.ReportMetric(res["gd1"], "mse-gd1")
		b.ReportMetric(res["zero"], "mse-zero")
	}
}

// BenchmarkAttentionQuadratic is E12a: transformer forward cost vs window
// length L (expected ~quadratic growth).
func BenchmarkAttentionQuadratic(b *testing.B) {
	for _, l := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("L%d", l), func(b *testing.B) {
			rng := mathx.NewRNG(1)
			m := transformer.MustNew(transformer.Config{
				Vocab: 50, Dim: 32, Layers: 2, Heads: 2, Window: l,
				Pos: transformer.PosSinusoidal, Act: nn.GELU,
			}, rng)
			ids := make([]int, l)
			for i := range ids {
				ids[i] = rng.Intn(50)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardLogits(ids)
			}
		})
	}
}

// BenchmarkRNNLinear is E12b: RNN sequential cost vs window length L
// (expected ~linear growth, but inherently serial).
func BenchmarkRNNLinear(b *testing.B) {
	for _, l := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("L%d", l), func(b *testing.B) {
			rng := mathx.NewRNG(2)
			m := rnn.MustNew(rnn.Config{Vocab: 50, Dim: 32, Hidden: 32, Kind: rnn.LSTM}, rng)
			ids := make([]int, l)
			for i := range ids {
				ids[i] = rng.Intn(50)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := m.NewState()
				for _, id := range ids {
					m.Step(st, id)
				}
			}
		})
	}
}

// BenchmarkSparseAttention is E12c: dense vs strided-sparse attention at a
// fixed window (the §6 sparse-transformer mitigation).
func BenchmarkSparseAttention(b *testing.B) {
	for _, stride := range []int{0, 8} {
		name := "dense"
		if stride > 0 {
			name = fmt.Sprintf("stride%d", stride)
		}
		b.Run(name, func(b *testing.B) {
			rng := mathx.NewRNG(3)
			m := transformer.MustNew(transformer.Config{
				Vocab: 50, Dim: 32, Layers: 2, Heads: 2, Window: 128,
				Pos: transformer.PosSinusoidal, Act: nn.GELU, SparseStride: stride,
			}, rng)
			ids := make([]int, 128)
			for i := range ids {
				ids[i] = rng.Intn(50)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardLogits(ids)
			}
		})
	}
}

// BenchmarkFewShotLift is E13: zero-shot vs few-shot accuracy of the
// demonstration-dependent imitator harness plus real prompt assembly cost.
func BenchmarkFewShotLift(b *testing.B) {
	rng := mathx.NewRNG(10)
	task := eval.ReverseTask(30, 3, rng)
	for i := 0; i < b.N; i++ {
		zero := eval.ScoreTask(imitator{}, task, eval.PromptConfig{Shots: 0}, mathx.NewRNG(11))
		few := eval.ScoreTask(imitator{}, task, eval.PromptConfig{Shots: 2}, mathx.NewRNG(11))
		b.ReportMetric(few-zero, "lift")
		b.ReportMetric(few, "fewshot-acc")
	}
}

// BenchmarkSamplingStrategies is E14: throughput of the Eq. 8 decoding
// family over a fixed logits vector.
func BenchmarkSamplingStrategies(b *testing.B) {
	rng := mathx.NewRNG(12)
	logits := make([]float64, 512)
	for i := range logits {
		logits[i] = rng.Norm()
	}
	strategies := map[string]sample.Strategy{
		"greedy": sample.Greedy{},
		"temp":   sample.Temperature{T: 0.8},
		"topk":   sample.TopK{K: 40, T: 0.8},
		"topp":   sample.TopP{P: 0.9, T: 0.8},
	}
	for name, s := range strategies {
		b.Run(name, func(b *testing.B) {
			r := mathx.NewRNG(13)
			for i := 0; i < b.N; i++ {
				s.Pick(logits, r)
			}
		})
	}
}

// BenchmarkTrainStep is E16: optimizer-step throughput of the data-parallel
// trainer at several worker counts on a fixed transformer and corpus. The
// Workers=1 rung is bit-identical to the classic sequential loop; higher
// rungs shard each minibatch across weight-sharing replicas with
// deterministic gradient reduction. Speedup over workers1 requires actual
// cores: with GOMAXPROCS=1 all rungs collapse to sequential throughput.
func BenchmarkTrainStep(b *testing.B) {
	const vocab, window = 96, 32
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			rng := mathx.NewRNG(41)
			model := transformer.MustNew(transformer.Config{
				Vocab: vocab, Dim: 64, Layers: 2, Heads: 4, Window: window,
				Pos: transformer.PosLearned, Act: nn.GELU,
			}, rng)
			data := make([]train.Batch, 64)
			for i := range data {
				in := make([]int, window)
				tg := make([]int, window)
				for j := range in {
					in[j] = rng.Intn(vocab)
					tg[j] = rng.Intn(vocab)
				}
				data[i] = train.Batch{Input: in, Target: tg}
			}
			b.ResetTimer()
			if _, err := train.Run(model, data, train.Config{
				Steps: b.N, BatchSize: 8, Schedule: train.Constant(0.001),
				Optimizer: train.NewAdam(0), ClipNorm: 1, Seed: 1, Workers: workers,
			}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/s")
		})
	}
}

// BenchmarkBatchedGeneration is E17: KV-cache decoding throughput, one
// sequence at a time (the pre-serving path) vs eight sequences per batched
// step (the serving path). Reports tokens generated per second.
func BenchmarkBatchedGeneration(b *testing.B) {
	const vocab, window, gen = 96, 64, 48
	rng := mathx.NewRNG(43)
	model := transformer.MustNew(transformer.Config{
		Vocab: vocab, Dim: 64, Layers: 2, Heads: 4, Window: window,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}, rng)
	prompt := []int{1, 2, 3}
	decodeSerial := func(n int) {
		for s := 0; s < n; s++ {
			p := model.NewPredictor()
			var logits []float64
			for _, id := range prompt {
				logits = p.Append(id)
			}
			for i := 0; i < gen-1; i++ {
				next, _ := mathx.ArgMax(logits)
				logits = p.Append(next)
			}
		}
	}
	decodeBatched := func(n int) {
		bp := model.NewBatchedPredictor()
		ids := make([]int, n)
		last := make([]int, n)
		for i := range ids {
			ids[i] = bp.Add()
		}
		for _, tok := range prompt {
			for i := range last {
				last[i] = tok
			}
			for i, row := range bp.Step(ids, last) {
				last[i], _ = mathx.ArgMax(row)
			}
		}
		for i := 0; i < gen-1; i++ {
			for j, row := range bp.Step(ids, last) {
				last[j], _ = mathx.ArgMax(row)
			}
		}
	}
	for _, bench := range []struct {
		name string
		run  func()
		seqs int
	}{
		{"serial1", func() { decodeSerial(1) }, 1},
		{"serial8", func() { decodeSerial(8) }, 8},
		{"batched8", func() { decodeBatched(8) }, 8},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.run()
			}
			b.ReportMetric(float64(b.N*bench.seqs*gen)/b.Elapsed().Seconds(), "tok/s")
		})
	}
}

// BenchmarkStreamingFirstToken is E18: time-to-first-token of the
// streaming API through the batched server, as a function of the number of
// concurrently streaming requests. Each iteration fires `load` Stream
// calls at an idle server and measures submission → first token-event for
// every request; the reported ttft-ms is the mean. Because the batch
// shares each decoding step's matrix work, first-token latency should grow
// sublinearly with load.
func BenchmarkStreamingFirstToken(b *testing.B) {
	lines := corpus.PCFGText(grammar.TinyEnglish(), 120, 10, mathx.NewRNG(11))
	model, _, err := core.Train(lines, core.Config{
		Tokenizer: core.WordTok,
		Model: transformer.Config{
			Dim: 32, Layers: 2, Heads: 2, Window: 32,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 30, BatchSize: 2, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, load := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("load%d", load), func(b *testing.B) {
			s := serve.New(model, serve.Config{MaxBatch: 8, CoalesceWait: time.Millisecond})
			defer s.Close()
			var mu sync.Mutex
			var totalFirst time.Duration
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				start := time.Now()
				for j := 0; j < load; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						first := true
						_, err := s.Stream(context.Background(),
							serve.NewRequest("the king",
								sample.WithMaxTokens(12), sample.WithSeed(uint64(j))),
							func(sample.Token) error {
								if first {
									first = false
									mu.Lock()
									totalFirst += time.Since(start)
									mu.Unlock()
								}
								return nil
							})
						if err != nil {
							b.Error(err)
						}
					}(j)
				}
				wg.Wait()
			}
			b.ReportMetric(float64(totalFirst.Microseconds())/1000/float64(b.N*load), "ttft-ms")
		})
	}
}

// BenchmarkDecodeToken is E19: steady-state single-sequence decode cost of
// the compiled inference fast path on the E18 serving config — per-token
// latency, tokens/sec, and allocations per token (the latter pinned to zero
// by the arena + preallocated KV cache; see also the regression test in
// internal/transformer). Each iteration appends one token to a predictor
// that is re-armed (outside the timer) whenever the window fills.
func BenchmarkDecodeToken(b *testing.B) {
	lines := corpus.PCFGText(grammar.TinyEnglish(), 120, 10, mathx.NewRNG(11))
	model, _, err := core.Train(lines, core.Config{
		Tokenizer: core.WordTok,
		Model: transformer.Config{
			Dim: 32, Layers: 2, Heads: 2, Window: 32,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 30, BatchSize: 2, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := model.Model
	prompt, err := model.EncodePrompt("the king", 24)
	if err != nil {
		b.Fatal(err)
	}
	arm := func() (*transformer.Predictor, []float64) {
		p := m.NewPredictor()
		var logits []float64
		for _, id := range prompt {
			logits = p.Append(id)
		}
		return p, logits
	}
	p, logits := arm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Len() >= m.Cfg.Window {
			b.StopTimer()
			p, logits = arm()
			b.StartTimer()
		}
		next, _ := mathx.ArgMax(logits)
		logits = p.Append(next)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkBatchedDecodeScaling is E21: batched decode throughput as a
// function of batch size, on the E17 serving shape (the config
// BenchmarkBatchedGeneration serves). Each batchN iteration runs one
// BatchedPredictor.Step over N concurrent sequences; with the
// cross-sequence GEMM step every packed weight block is streamed from
// memory once per step regardless of N, so tokens/s should scale with N
// until the per-sequence attention work (which cannot batch across
// sequences) dominates (per-row matVec decoding instead re-streams the
// whole weight set N times per step, pinning per-step cost to N × the
// batch-1 cost). The serialN rungs measure that per-row baseline: N
// independent Predictor.Append calls, the exact per-sequence work the old
// per-row Step performed. Sequences re-arm at the window, so each rung
// decodes the same position distribution regardless of iteration count.
func BenchmarkBatchedDecodeScaling(b *testing.B) {
	const vocab, window = 96, 64
	cfg := transformer.Config{
		Vocab: vocab, Dim: 64, Layers: 2, Heads: 4, Window: window,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}
	m := transformer.MustNew(cfg, mathx.NewRNG(21))
	seed := []int{1, 2, 3}
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			bp := m.NewBatchedPredictor()
			ids := make([]int, batch)
			last := make([]int, batch)
			arm := func() {
				for i := range ids {
					ids[i] = bp.Add()
					last[i] = seed[0]
				}
				for _, tok := range seed[1:] {
					bp.Step(ids, last)
					for i := range last {
						last[i] = tok
					}
				}
			}
			arm()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if bp.Len(ids[0]) >= window {
					b.StopTimer()
					for _, id := range ids {
						bp.Drop(id)
					}
					arm()
					b.StartTimer()
				}
				for j, row := range bp.Step(ids, last) {
					last[j], _ = mathx.ArgMax(row)
				}
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "tok/s")
		})
		b.Run(fmt.Sprintf("serial%d", batch), func(b *testing.B) {
			ps := make([]*transformer.Predictor, batch)
			last := make([]int, batch)
			arm := func() {
				for i := range ps {
					ps[i] = m.NewPredictor()
					var logits []float64
					for _, tok := range seed {
						logits = ps[i].Append(tok)
					}
					last[i], _ = mathx.ArgMax(logits)
				}
			}
			arm()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ps[0].Len() >= window {
					b.StopTimer()
					arm()
					b.StartTimer()
				}
				for j, p := range ps {
					last[j], _ = mathx.ArgMax(p.Append(last[j]))
				}
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "tok/s")
		})
	}
}

// speculativeBenchModel trains the E22 fixture once per binary: the E17
// serving shape on the low-entropy chronicle corpus — formulaic text whose
// greedy continuations are mostly deterministic given short context, the
// regime draft-and-verify decoding is built for.
var speculativeBenchModel = sync.OnceValues(func() (*core.LLM, error) {
	lines := corpus.PCFGText(grammar.Chronicle(), 400, 12, mathx.NewRNG(22))
	model, _, err := core.Train(lines, core.Config{
		Tokenizer: core.WordTok,
		Model: transformer.Config{
			Dim: 64, Layers: 2, Heads: 4, Window: 64,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 200, BatchSize: 4, Seed: 22,
	})
	return model, err
})

// BenchmarkSpeculativeDecode is E22: end-to-end greedy generation
// throughput with self-speculative decoding versus the plain decode loop,
// on the E17 serving shape. An order-3 n-gram drafter distilled from the
// served model proposes k-token blocks; one ExtendAll pass verifies each
// block and the longest agreeing prefix is accepted, so the output stream
// is bitwise identical to plain greedy decode (checked every iteration).
// Reports tokens/s and the draft-acceptance rate per depth.
func BenchmarkSpeculativeDecode(b *testing.B) {
	model, err := speculativeBenchModel()
	if err != nil {
		b.Fatal(err)
	}
	const prompt = "the royal king"
	const genTokens = 56
	opts := []sample.Option{sample.WithMaxTokens(genTokens), sample.WithSeed(1)}
	plain, err := lm.Gen(model, prompt, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lm.Gen(model, prompt, opts...); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*genTokens)/b.Elapsed().Seconds(), "tok/s")
	})
	drafter := lm.DistillDrafter(model, 3, 4096, 22)
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("speculate%d", k), func(b *testing.B) {
			sp := &sample.Speculative{K: k, Drafter: drafter}
			sp.Stats = sample.SpecStats{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := lm.Gen(model, prompt, append(append([]sample.Option(nil), opts...),
					sample.WithSpeculative(sp))...)
				if err != nil {
					b.Fatal(err)
				}
				if res.Text != plain.Text {
					b.Fatalf("speculative output %q != plain %q", res.Text, plain.Text)
				}
			}
			b.ReportMetric(float64(b.N*genTokens)/b.Elapsed().Seconds(), "tok/s")
			if sp.Stats.Drafted > 0 {
				b.ReportMetric(float64(sp.Stats.Accepted)/float64(sp.Stats.Drafted), "accept")
			}
		})
	}
}

// BenchmarkGPT3ParameterFormula is E15: the §6 parameter arithmetic.
func BenchmarkGPT3ParameterFormula(b *testing.B) {
	var got int
	for i := 0; i < b.N; i++ {
		got = transformer.GPT3Estimate(96, 12288)
	}
	b.ReportMetric(float64(got)/1e9, "params-B")
}

// BenchmarkPrefill is E20: prompt ingestion throughput of the chunked
// prefill fast path (Predictor.Extend, matrix-matrix over the whole prompt)
// against the token-by-token Append loop it replaces, for a 256-token
// prompt at the E18 serving shape. Outputs are bitwise identical (see the
// parity tests in internal/transformer); only the schedule of the
// arithmetic differs. Timing does not depend on weight values, so the
// model is randomly initialized.
func BenchmarkPrefill(b *testing.B) {
	cfg := transformer.Config{
		Vocab: 33, Dim: 32, Layers: 2, Heads: 2, Window: 288,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}
	m := transformer.MustNew(cfg, mathx.NewRNG(9))
	rng := mathx.NewRNG(10)
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = rng.Intn(cfg.Vocab)
	}
	b.Run("extend", func(b *testing.B) {
		m.NewPredictor().Extend(prompt) // compile + warm outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := m.NewPredictor()
			b.StartTimer()
			p.Extend(prompt)
		}
		b.ReportMetric(float64(b.N*len(prompt))/b.Elapsed().Seconds(), "tok/s")
	})
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := m.NewPredictor()
			b.StartTimer()
			for _, id := range prompt {
				p.Append(id)
			}
		}
		b.ReportMetric(float64(b.N*len(prompt))/b.Elapsed().Seconds(), "tok/s")
	})
}

// BenchmarkTTFTLongPrompt is the E20 serving measurement: time-to-first-
// token through the batched server as a function of prompt length and
// concurrent load. Chunked prefill scheduling keeps TTFT growing roughly
// linearly in prompt length while concurrent decodes continue between
// chunks.
func BenchmarkTTFTLongPrompt(b *testing.B) {
	lines := corpus.PCFGText(grammar.TinyEnglish(), 120, 10, mathx.NewRNG(11))
	tok := tokenizer.NewWord(lines)
	cfg := transformer.Config{
		Vocab: tok.VocabSize(), Dim: 32, Layers: 2, Heads: 2, Window: 288,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}
	model := &core.LLM{Tok: tok, Model: transformer.MustNew(cfg, mathx.NewRNG(12))}
	for _, promptLen := range []int{16, 64, 256} {
		prompt := strings.TrimSpace(strings.Repeat("the ", promptLen))
		chunks := []int{0} // 0 = the default chunk size
		if promptLen == 256 {
			// The one-token-chunk variant approximates the pre-fast-path
			// loop (one forced prompt token per step), quantifying what
			// chunked prefill buys at the serving layer.
			chunks = []int{0, 1}
		}
		for _, load := range []int{1, 8} {
			for _, chunk := range chunks {
				name := fmt.Sprintf("prompt%d/load%d", promptLen, load)
				if chunk > 0 {
					name += fmt.Sprintf("/chunk%d", chunk)
				}
				b.Run(name, func(b *testing.B) {
					s := serve.New(model, serve.Config{
						MaxBatch: 8, CoalesceWait: time.Millisecond, PrefillChunk: chunk,
					})
					defer s.Close()
					var mu sync.Mutex
					var totalFirst time.Duration
					for i := 0; i < b.N; i++ {
						var wg sync.WaitGroup
						start := time.Now()
						for j := 0; j < load; j++ {
							wg.Add(1)
							go func(j int) {
								defer wg.Done()
								first := true
								_, err := s.Stream(context.Background(),
									serve.NewRequest(prompt,
										sample.WithMaxTokens(8), sample.WithSeed(uint64(j))),
									func(sample.Token) error {
										if first {
											first = false
											mu.Lock()
											totalFirst += time.Since(start)
											mu.Unlock()
										}
										return nil
									})
								if err != nil {
									b.Error(err)
								}
							}(j)
						}
						wg.Wait()
					}
					b.ReportMetric(float64(totalFirst.Microseconds())/1000/float64(b.N*load), "ttft-ms")
				})
			}
		}
	}
}
