// Command scaling-laws regenerates the paper's Table 1 (published model
// sizes vs the 12·D·p² rule) and Figure 2 (held-out loss vs parameters,
// data, and compute) at laptop scale: it trains a grid of transformer
// models on a synthetic PCFG corpus, fits power laws and the Eq. 4 joint
// ansatz, and prints the series.
//
// Usage:
//
//	scaling-laws [-steps 220] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/scaling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling-laws: ")
	var (
		steps = flag.Int("steps", 220, "optimizer steps per sweep cell")
		seed  = flag.Uint64("seed", 11, "random seed")
	)
	flag.Parse()

	fmt.Println("== Table 1: published LLM sizes vs the 12*D*p^2 estimate ==")
	fmt.Print(scaling.FormatTable1(scaling.Table1()))

	cfg := scaling.DefaultSweep()
	cfg.Steps = *steps
	cfg.Seed = *seed
	fmt.Printf("\n== Figure 2 sweep: dims %v x data %v (%d steps/cell) ==\n",
		cfg.Dims, cfg.DataTokens, cfg.Steps)
	points, err := scaling.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scaling.FormatPoints(points))

	fp := scaling.FitLossVsParams(points)
	fd := scaling.FitLossVsData(points)
	joint := scaling.FitJointAnsatz(points)
	fmt.Printf("\nL ~ P^alpha fit: alpha=%.3f (R2=%.2f)\n", fp.Alpha, fp.R2)
	fmt.Printf("L ~ D^alpha fit: alpha=%.3f (R2=%.2f)\n", fd.Alpha, fd.R2)
	fmt.Printf("Eq. 4 ansatz: alphaP=%.3f alphaD=%.3f Pc=%.3g Dc=%.3g (RMSE %.3f)\n",
		joint.AlphaP, joint.AlphaD, joint.Pc, joint.Dc, joint.RMSE)
	fmt.Println("\nPaper shape check: both exponents should be negative; loss falls")
	fmt.Println("monotonically along each axis (Kaplan et al report alpha in -0.05..-0.1).")
}
