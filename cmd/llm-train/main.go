// Command llm-train trains a transformer language model (the paper's §6
// recipe) on a text corpus — one document per line — and writes a JSON
// checkpoint loadable by llm-generate and llm-bench. Without -corpus it
// trains on the repository's synthetic English-like PCFG corpus.
//
// Usage:
//
//	llm-train -out model.json [-corpus lines.txt] [-tokenizer word|bpe]
//	          [-dim 32] [-layers 2] [-heads 2] [-window 16]
//	          [-steps 400] [-lr 0.003] [-seed 7] [-synthetic 500]
//	          [-workers N] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -cpuprofile and -memprofile write pprof profiles (CPU sampling over the
// whole run; heap snapshot at exit) so training performance work can be
// measured instead of guessed.
//
// -workers > 1 shards each optimizer step's minibatch across that many
// goroutines with deterministic gradient reduction (-workers -1 selects the
// CPU count). The default of 1 is the classic sequential loop, kept so a
// fixed seed reproduces the same checkpoint on any machine; runs are
// reproducible for a fixed (seed, workers) pair.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/transformer"
	"repro/llm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-train: ")
	var (
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		corpusPath = flag.String("corpus", "", "training corpus file (one document per line); empty = synthetic")
		synthetic  = flag.Int("synthetic", 500, "synthetic corpus size when -corpus is empty")
		tokKind    = flag.String("tokenizer", "word", "tokenizer: word or bpe")
		dim        = flag.Int("dim", 32, "embedding dimension p")
		layers     = flag.Int("layers", 2, "transformer blocks D")
		heads      = flag.Int("heads", 2, "attention heads H")
		window     = flag.Int("window", 16, "context window L")
		steps      = flag.Int("steps", 400, "optimizer steps")
		lr         = flag.Float64("lr", 0.003, "peak learning rate")
		seed       = flag.Uint64("seed", 7, "random seed")
		workers    = flag.Int("workers", 1, "data-parallel workers per step (1 = sequential, -1 = NumCPU)")
		out        = flag.String("out", "model.json", "checkpoint output path")
	)
	flag.Parse()

	stopProfiles, err := llm.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	var lines []string
	if *corpusPath != "" {
		f, err := os.Open(*corpusPath)
		if err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if sc.Text() != "" {
				lines = append(lines, sc.Text())
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
	} else {
		lines = corpus.PCFGText(grammar.TinyEnglish(), *synthetic, 10, mathx.NewRNG(*seed))
		log.Printf("using synthetic corpus: %d sentences", len(lines))
	}

	cfg := core.Config{
		Tokenizer: core.WordTok,
		Model: transformer.Config{
			Dim: *dim, Layers: *layers, Heads: *heads, Window: *window,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: *steps, LR: *lr, Seed: *seed, Workers: *workers,
	}
	if *tokKind == "bpe" {
		cfg.Tokenizer = core.BPETok
	}

	model, res, err := core.Train(lines, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vocab=%d params=%d\n", model.Tok.VocabSize(), model.Model.NumParameters())
	fmt.Printf("loss: %.4f -> %.4f over %d steps\n",
		res.Curve[0].TrainLoss, res.FinalTrainLoss(), len(res.Curve))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written to %s\n", *out)
}
