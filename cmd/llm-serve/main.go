// Command llm-serve exposes a trained language model as an HTTP generation
// service backed by the request-batching engine of package llm: concurrent
// requests are coalesced into batched forward passes over the KV-cache
// inference path, each with its own sampling parameters. Without -model it
// trains a small model on the synthetic PCFG corpus at startup so the
// service can be tried end to end with no checkpoint; -backend swaps in a
// §5 ladder substrate (n-gram, FFN-LM, LSTM) served in single-sequence
// mode through the same API.
//
// Usage:
//
//	llm-serve [-model model.json] [-backend transformer|ngram|ffn|rnn]
//	          [-addr :8372] [-max-batch 8] [-coalesce 2ms] [-queue 64]
//	          [-prefill-chunk 32] [-synthetic 500] [-speculate 4]
//
// Prompts are ingested through the chunked prefill fast path: whole chunks
// of -prefill-chunk tokens per matrix pass, interleaved with the in-flight
// batch's decode steps so a long prompt never stalls running streams by
// more than one chunk (negative = whole prompts in one pass). /v1/stats
// reports prompt_tokens and decode_tokens separately, plus the
// prefill_chunk_hist histogram of chunk sizes and the batch_hist histogram
// of per-step decode batch sizes (how well concurrent traffic amortizes
// each step's one-pass weight streaming).
//
// -speculate k enables speculative decoding (transformer backend only): an
// n-gram draft model distilled from the served model at startup proposes
// blocks of k tokens and each block is verified in one pass, scheduled like
// prefill chunks so draft work never starves in-flight decodes. Greedy
// requests keep bitwise-identical output; stochastic requests keep their
// exact token distribution. /v1/stats gains spec_rounds, spec_drafted,
// spec_accepted, and the spec_accept_hist acceptance-length histogram.
//
// Endpoints:
//
//	POST /v1/generate  {"prompt": "the king", "tokens": 12,
//	                    "strategy": "temp", "temperature": 0.8,
//	                    "top_k": 10, "top_p": 0.9, "seed": 1,
//	                    "stop_at_eos": false}
//	  -> {"completion": "...", "tokens": [ ... ], "duration_ms": 1.93}
//	POST /v1/stream    same body; server-sent events, one per token as its
//	                   batched decoding step completes:
//	                     data: {"index":0,"id":17,"text":"crown"}
//	                   then a final event:
//	                     data: {"done":true,"completion":"...","duration_ms":1.93}
//	GET  /v1/stats     server throughput counters
//	GET  /healthz      liveness probe
//
// The request's HTTP context propagates to the batching engine, so a client
// disconnect drops the request from the decoding batch immediately.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/llm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-serve: ")
	var (
		modelPath = flag.String("model", "", "checkpoint written by llm-train; empty = train a synthetic demo model")
		backend   = flag.String("backend", "transformer", "model backend: transformer, ngram, ffn or rnn")
		synthetic = flag.Int("synthetic", 500, "synthetic corpus size for the demo model")
		addr      = flag.String("addr", ":8372", "listen address")
		maxBatch  = flag.Int("max-batch", 8, "max sequences decoded per batched step")
		coalesce  = flag.Duration("coalesce", 2*time.Millisecond, "linger for more requests before decoding a fresh batch")
		queue     = flag.Int("queue", 64, "pending-request buffer depth")
		prefill   = flag.Int("prefill-chunk", 32, "max prompt tokens ingested per prefill pass between decode steps (negative = whole prompt)")
		speculate = flag.Int("speculate", 0, "speculative draft depth; distills an n-gram drafter at startup (0 disables)")
	)
	flag.Parse()

	model, err := loadBackend(*backend, *modelPath, *synthetic)
	if err != nil {
		log.Fatal(err)
	}

	var drafter llm.Drafter
	if *speculate > 0 {
		log.Printf("distilling n-gram draft model (depth %d)", *speculate)
		drafter = llm.DistillDrafter(model, 3, 4096, 42)
	}
	srv := llm.NewBackendServer(model, llm.ServerConfig{
		MaxBatch: *maxBatch, CoalesceWait: *coalesce, QueueDepth: *queue,
		PrefillChunk: *prefill, Speculate: *speculate, Drafter: drafter,
	})
	defer srv.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, r *http.Request) {
		handleGenerate(srv, w, r)
	})
	mux.HandleFunc("POST /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		handleStream(srv, w, r)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
	}()
	log.Printf("serving on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("shut down")
}

// loadBackend opens a transformer checkpoint, or trains the selected demo
// backend on the synthetic corpus when no checkpoint is given.
func loadBackend(backend, path string, synthetic int) (llm.LanguageModel, error) {
	if path != "" {
		if backend != "transformer" {
			return nil, fmt.Errorf("-model requires -backend transformer (got %q)", backend)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		model, err := core.Load(f)
		if err != nil {
			return nil, err
		}
		log.Printf("model ready: vocab=%d params=%d window=%d",
			model.Tok.VocabSize(), model.Model.NumParameters(), model.Model.Cfg.Window)
		return model, nil
	}
	log.Printf("no -model: training a demo %s backend on %d synthetic sentences", backend, synthetic)
	return llm.TrainBackend(backend, llm.SyntheticCorpus(synthetic, 42), 42)
}

// genRequest is the POST /v1/generate and /v1/stream body.
type genRequest struct {
	Prompt      string  `json:"prompt"`
	Tokens      int     `json:"tokens"`
	Strategy    string  `json:"strategy"` // greedy (default), temp, topk, topp
	Temperature float64 `json:"temperature"`
	TopK        int     `json:"top_k"`
	TopP        float64 `json:"top_p"`
	Seed        uint64  `json:"seed"`
	StopAtEOS   bool    `json:"stop_at_eos"`
}

// genResponse is the POST /v1/generate reply.
type genResponse struct {
	Completion string  `json:"completion"`
	Tokens     []int   `json:"tokens"`
	DurationMS float64 `json:"duration_ms"`
}

// parseRequest decodes and validates a request body into a GenRequest.
func parseRequest(r *http.Request) (llm.GenRequest, error) {
	var req genRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return llm.GenRequest{}, fmt.Errorf("bad json: %w", err)
	}
	if req.Tokens <= 0 {
		req.Tokens = 12
	}
	strat, err := llm.ParseStrategy(req.Strategy, req.Temperature, req.TopP, req.TopK)
	if err != nil {
		return llm.GenRequest{}, err
	}
	out := llm.GenRequest{
		Prompt: req.Prompt, MaxTokens: req.Tokens, Strategy: strat,
		Seed: req.Seed, StopAtEOS: req.StopAtEOS,
	}
	return out, nil
}

func handleGenerate(srv *llm.Server, w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	start := time.Now()
	res, err := srv.Do(r.Context(), req)
	if err != nil {
		writeJSON(w, errStatus(err), map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, genResponse{
		Completion: res.Text,
		Tokens:     res.Tokens,
		DurationMS: sinceMS(start),
	})
}

// streamDone is the terminal event of a /v1/stream response.
type streamDone struct {
	Done       bool    `json:"done"`
	Completion string  `json:"completion"`
	DurationMS float64 `json:"duration_ms"`
}

// handleStream serves one generation as server-sent events, flushing each
// token the moment its batched decoding step completes.
func handleStream(srv *llm.Server, w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// Reject invalid requests with a proper status before committing to
	// streaming headers, matching /v1/generate's error contract.
	if err := srv.Validate(req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	start := time.Now()
	res, err := srv.Stream(r.Context(), req, func(t llm.Token) error {
		if err := writeEvent(w, t); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	})
	if err != nil {
		// Headers are sent; report the failure in-band and end the stream.
		writeEvent(w, map[string]string{"error": err.Error()})
		flusher.Flush()
		return
	}
	writeEvent(w, streamDone{Done: true, Completion: res.Text, DurationMS: sinceMS(start)})
	flusher.Flush()
}

// writeEvent emits one SSE data frame.
func writeEvent(w http.ResponseWriter, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// errStatus maps engine errors to HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request
	case errors.Is(err, llm.ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func sinceMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
