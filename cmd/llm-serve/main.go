// Command llm-serve exposes a trained language model as an HTTP generation
// service backed by the request-batching engine of package llm: concurrent
// requests are coalesced into batched forward passes over the KV-cache
// inference path, each with its own sampling parameters. Without -model it
// trains a small model on the synthetic PCFG corpus at startup so the
// service can be tried end to end with no checkpoint.
//
// Usage:
//
//	llm-serve [-model model.json] [-addr :8372] [-max-batch 8]
//	          [-coalesce 2ms] [-queue 64] [-synthetic 500]
//
// Endpoints:
//
//	POST /v1/generate  {"prompt": "the king", "tokens": 12,
//	                    "strategy": "temp", "temperature": 0.8,
//	                    "top_k": 10, "top_p": 0.9, "seed": 1,
//	                    "stop_at_eos": false}
//	  -> {"completion": "...", "tokens": [ ... ], "duration_ms": 1.93}
//	GET  /v1/stats     server throughput counters
//	GET  /healthz      liveness probe
//
// The request's HTTP context propagates to the batching engine, so a client
// disconnect drops the request from the decoding batch immediately.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/llm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-serve: ")
	var (
		modelPath = flag.String("model", "", "checkpoint written by llm-train; empty = train a synthetic demo model")
		synthetic = flag.Int("synthetic", 500, "synthetic corpus size for the demo model")
		addr      = flag.String("addr", ":8372", "listen address")
		maxBatch  = flag.Int("max-batch", 8, "max sequences decoded per batched step")
		coalesce  = flag.Duration("coalesce", 2*time.Millisecond, "linger for more requests before decoding a fresh batch")
		queue     = flag.Int("queue", 64, "pending-request buffer depth")
	)
	flag.Parse()

	model, err := loadModel(*modelPath, *synthetic)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("model ready: vocab=%d params=%d window=%d",
		model.Tok.VocabSize(), model.Model.NumParameters(), model.Model.Cfg.Window)

	srv := llm.NewServer(model, llm.ServerConfig{
		MaxBatch: *maxBatch, CoalesceWait: *coalesce, QueueDepth: *queue,
	})
	defer srv.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, r *http.Request) {
		handleGenerate(srv, model, w, r)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
	}()
	log.Printf("serving on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("shut down")
}

// loadModel opens a checkpoint, or trains the synthetic demo model when no
// path is given.
func loadModel(path string, synthetic int) (*llm.LLM, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.Load(f)
	}
	log.Printf("no -model: training a demo model on %d synthetic sentences", synthetic)
	model, _, err := llm.Train(llm.SyntheticCorpus(synthetic, 42), llm.DefaultConfig())
	return model, err
}

// genRequest is the POST /v1/generate body.
type genRequest struct {
	Prompt      string  `json:"prompt"`
	Tokens      int     `json:"tokens"`
	Strategy    string  `json:"strategy"` // greedy (default), temp, topk, topp
	Temperature float64 `json:"temperature"`
	TopK        int     `json:"top_k"`
	TopP        float64 `json:"top_p"`
	Seed        uint64  `json:"seed"`
	StopAtEOS   bool    `json:"stop_at_eos"`
}

// genResponse is the POST /v1/generate reply.
type genResponse struct {
	Completion string  `json:"completion"`
	Tokens     []int   `json:"tokens"`
	DurationMS float64 `json:"duration_ms"`
}

func handleGenerate(srv *llm.Server, model *llm.LLM, w http.ResponseWriter, r *http.Request) {
	var req genRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad json: " + err.Error()})
		return
	}
	if req.Tokens <= 0 {
		req.Tokens = 12
	}
	strat, err := pickStrategy(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	start := time.Now()
	res, err := srv.Do(r.Context(), llm.GenRequest{
		Prompt: req.Prompt, MaxTokens: req.Tokens, Strategy: strat,
		Seed: req.Seed, StopAtEOS: req.StopAtEOS,
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = 499 // client closed request
		} else if errors.Is(err, llm.ErrServerClosed) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, genResponse{
		Completion: res.Text,
		Tokens:     res.Tokens,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func pickStrategy(req genRequest) (llm.Strategy, error) {
	t := req.Temperature
	if t == 0 {
		t = 0.8
	}
	switch req.Strategy {
	case "", "greedy":
		return llm.Greedy(), nil
	case "temp":
		return llm.Temperature(t), nil
	case "topk":
		k := req.TopK
		if k == 0 {
			k = 10
		}
		return llm.TopK(k, t), nil
	case "topp":
		p := req.TopP
		if p == 0 {
			p = 0.9
		}
		return llm.TopP(p, t), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
