// Command llm-serve exposes a trained language model as an HTTP generation
// service backed by the request-batching engine of package llm: concurrent
// requests are coalesced into batched forward passes over the KV-cache
// inference path, each with its own sampling parameters. Without -model it
// trains a small model on the synthetic PCFG corpus at startup so the
// service can be tried end to end with no checkpoint; -backend swaps in a
// §5 ladder substrate (n-gram, FFN-LM, LSTM) served in single-sequence
// mode through the same API.
//
// Usage:
//
//	llm-serve [-model model.json] [-backend transformer|ngram|ffn|rnn]
//	          [-addr :8372] [-max-batch 8] [-coalesce 2ms] [-queue 64]
//	          [-prefill-chunk 32] [-synthetic 500] [-speculate 4]
//	          [-drain-timeout 30s] [-request-timeout 0] [-stall-timeout 0]
//	          [-join http://127.0.0.1:8371] [-advertise http://host:8372]
//	          [-lease 15s] [-heartbeat 5s]
//
// -join enrolls the worker in an llm-router fleet dynamically: on startup
// it registers its -advertise URL (derived from -addr when unset) with the
// router's /v1/register, requesting a -lease TTL, then heartbeats every
// -heartbeat (default lease/3) to keep the lease alive — retrying with
// jittered exponential backoff while the router is unreachable, so worker
// and router can start in any order. With a replicated router tier, -join
// takes every router's base URL comma-separated; the worker registers with
// and heartbeats all of them independently, tolerating any subset being
// down. Draining (SIGTERM or /v1/drain) deregisters explicitly from every
// router — each with a short bounded retry — before the listener shuts
// down, so the routers drop the worker immediately instead of waiting out
// the lease.
//
// -request-timeout is the server-side default deadline: a request without
// its own timeout_ms budget that overruns it fails with 504 between decode
// steps and releases its batch slot. -stall-timeout arms the token-progress
// watchdog, which fails streams that stop producing tokens (a wedged loop
// or blocked predictor) even when total runtime is still within budget.
//
// Prompts are ingested through the chunked prefill fast path: whole chunks
// of -prefill-chunk tokens per matrix pass, interleaved with the in-flight
// batch's decode steps so a long prompt never stalls running streams by
// more than one chunk (negative = whole prompts in one pass). /v1/stats
// reports prompt_tokens and decode_tokens separately, the in_flight and
// queued live gauges an llm-router polls for load-aware placement, plus the
// prefill_chunk_hist histogram of chunk sizes and the batch_hist histogram
// of per-step decode batch sizes (how well concurrent traffic amortizes
// each step's one-pass weight streaming).
//
// -speculate k enables speculative decoding (transformer backend only): an
// n-gram draft model distilled from the served model at startup proposes
// blocks of k tokens and each block is verified in one pass, scheduled like
// prefill chunks so draft work never starves in-flight decodes. Greedy
// requests keep bitwise-identical output; stochastic requests keep their
// exact token distribution. /v1/stats gains spec_rounds, spec_drafted,
// spec_accepted, and the spec_accept_hist acceptance-length histogram.
//
// The HTTP surface lives in internal/httpapi (shared with the test
// harnesses and self-hosted benchmarks):
//
//	POST /v1/generate  {"prompt": "the king", "tokens": 12,
//	                    "strategy": "temp", "temperature": 0.8,
//	                    "top_k": 10, "top_p": 0.9, "seed": 1,
//	                    "stop_at_eos": false, "session": "user-42"}
//	  -> {"completion": "...", "tokens": [ ... ], "duration_ms": 1.93}
//	POST /v1/stream    same body; server-sent events, one per token as its
//	                   batched decoding step completes:
//	                     data: {"index":0,"id":17,"text":"crown"}
//	                   then a final event:
//	                     data: {"done":true,"completion":"...","duration_ms":1.93}
//	GET  /v1/stats     server throughput counters and load gauges
//	GET  /healthz      readiness probe: 200 serving, 503 draining
//	POST /v1/drain     enter drain mode (equivalent to SIGTERM)
//
// "session" is an opaque affinity key for llm-router's consistent-hash
// placement; the worker itself ignores it.
//
// Shutdown is graceful: SIGTERM (or POST /v1/drain) stops admission — new
// generation requests get 503 + Retry-After and /healthz flips to 503 so a
// router ejects the worker — while requests already in flight, including
// SSE streams, run to completion (bounded by -drain-timeout) before the
// process exits.
//
// The request's HTTP context propagates to the batching engine, so a client
// disconnect drops the request from the decoding batch immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/serve"
	"repro/llm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-serve: ")
	var (
		modelPath    = flag.String("model", "", "checkpoint written by llm-train; empty = train a synthetic demo model")
		backend      = flag.String("backend", "transformer", "model backend: transformer, ngram, ffn or rnn")
		synthetic    = flag.Int("synthetic", 500, "synthetic corpus size for the demo model")
		addr         = flag.String("addr", ":8372", "listen address")
		maxBatch     = flag.Int("max-batch", 8, "max sequences decoded per batched step")
		coalesce     = flag.Duration("coalesce", 2*time.Millisecond, "linger for more requests before decoding a fresh batch")
		queue        = flag.Int("queue", 64, "pending-request buffer depth")
		prefill      = flag.Int("prefill-chunk", 32, "max prompt tokens ingested per prefill pass between decode steps (negative = whole prompt)")
		speculate    = flag.Int("speculate", 0, "speculative draft depth; distills an n-gram drafter at startup (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on SIGTERM or /v1/drain")
		reqTimeout   = flag.Duration("request-timeout", 0, "default per-request deadline; requests without their own timeout_ms fail with 504 past it (0 disables)")
		stallTimeout = flag.Duration("stall-timeout", 0, "token-progress watchdog: streams making no progress for this long are failed (0 disables)")
		join         = flag.String("join", "", "comma-separated router base URLs to register with (empty = static membership)")
		advertise    = flag.String("advertise", "", "base URL advertised to the router (default: derived from -addr)")
		lease        = flag.Duration("lease", 15*time.Second, "registration lease TTL requested from the router")
		heartbeat    = flag.Duration("heartbeat", 0, "lease-renewal period (0 = lease/3)")
	)
	flag.Parse()

	model, err := loadBackend(*backend, *modelPath, *synthetic)
	if err != nil {
		log.Fatal(err)
	}

	var drafter llm.Drafter
	if *speculate > 0 {
		log.Printf("distilling n-gram draft model (depth %d)", *speculate)
		drafter = llm.DistillDrafter(model, 3, 4096, 42)
	}
	srv := serve.NewBackend(model, serve.Config{
		MaxBatch: *maxBatch, CoalesceWait: *coalesce, QueueDepth: *queue,
		PrefillChunk: *prefill, Speculate: *speculate, Drafter: drafter,
		RequestTimeout: *reqTimeout, StallTimeout: *stallTimeout,
	})
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// The joiner keeps this worker registered with a router; it is started
	// after the listener below and torn down first on drain.
	var joiner *httpapi.Joiner

	// Drain (via /v1/drain or a signal) stops admission in the handler;
	// Shutdown then waits for in-flight requests — SSE streams included —
	// before ListenAndServe returns. A joined worker deregisters first so
	// the router stops sending fresh work while in-flight requests finish.
	h := httpapi.New(srv, func() {
		if joiner != nil {
			leaveCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := joiner.Leave(leaveCtx); err != nil {
				log.Printf("deregister failed (lease will expire instead): %v", err)
			} else {
				log.Printf("deregistered from %s", *join)
			}
			cancel()
		}
		log.Printf("draining: waiting up to %s for in-flight requests", *drainTimeout)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			log.Printf("drain timed out: %v", err)
		}
	})
	hs.Handler = h

	if *join != "" {
		self := *advertise
		if self == "" {
			self = advertisedURL(*addr)
		}
		var routers []string
		for _, r := range strings.Split(*join, ",") {
			if r = strings.TrimSpace(r); r != "" {
				routers = append(routers, r)
			}
		}
		var err error
		joiner, err = httpapi.StartJoiner(httpapi.JoinConfig{
			Routers: routers, Self: self,
			Lease: *lease, Interval: *heartbeat, Logf: log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		h.Drain()
	}()
	log.Printf("serving on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("shut down")
}

// advertisedURL derives the self-registration URL from the listen address:
// a bare-port ":8372" is reachable (at least) on loopback, anything with a
// host keeps it.
func advertisedURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// loadBackend opens a transformer checkpoint, or trains the selected demo
// backend on the synthetic corpus when no checkpoint is given.
func loadBackend(backend, path string, synthetic int) (llm.LanguageModel, error) {
	if path != "" {
		if backend != "transformer" {
			return nil, fmt.Errorf("-model requires -backend transformer (got %q)", backend)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		model, err := core.Load(f)
		if err != nil {
			return nil, err
		}
		log.Printf("model ready: vocab=%d params=%d window=%d",
			model.Tok.VocabSize(), model.Model.NumParameters(), model.Model.Cfg.Window)
		return model, nil
	}
	log.Printf("no -model: training a demo %s backend on %d synthetic sentences", backend, synthetic)
	return llm.TrainBackend(backend, llm.SyntheticCorpus(synthetic, 42), 42)
}
