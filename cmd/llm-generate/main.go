// Command llm-generate loads a checkpoint written by llm-train and samples
// continuations with the decoding strategies of the paper's Eq. 8 family:
// greedy (temperature → 0), Boltzmann temperature sampling, top-k, and
// nucleus sampling.
//
// Usage:
//
//	llm-generate -model model.json -prompt "the king" [-n 12]
//	             [-strategy greedy|temp|topk|topp] [-temp 0.8] [-k 10]
//	             [-p 0.9] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/sample"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-generate: ")
	var (
		modelPath = flag.String("model", "model.json", "checkpoint path")
		prompt    = flag.String("prompt", "the", "prompt text")
		n         = flag.Int("n", 12, "tokens to generate")
		strategy  = flag.String("strategy", "temp", "greedy, temp, topk or topp")
		temp      = flag.Float64("temp", 0.8, "sampling temperature")
		k         = flag.Int("k", 10, "top-k cutoff")
		p         = flag.Float64("p", 0.9, "nucleus mass")
		seed      = flag.Uint64("seed", 1, "sampling seed")
	)
	flag.Parse()

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	var strat sample.Strategy
	switch *strategy {
	case "greedy":
		strat = sample.Greedy{}
	case "temp":
		strat = sample.Temperature{T: *temp}
	case "topk":
		strat = sample.TopK{K: *k, T: *temp}
	case "topp":
		strat = sample.TopP{P: *p, T: *temp}
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	out, err := model.Generate(*prompt, *n, strat, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %s\n", *prompt, out)
}
