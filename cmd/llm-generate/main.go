// Command llm-generate samples continuations with the decoding strategies
// of the paper's Eq. 8 family — greedy (temperature → 0), Boltzmann
// temperature sampling, top-k, and nucleus sampling — from any backend of
// the unified generation API: the transformer checkpoint written by
// llm-train (default), or a §5 ladder substrate (n-gram, FFN-LM, LSTM)
// trained at startup. With -stream each token is printed the moment it is
// sampled.
//
// Usage:
//
//	llm-generate -model model.json -prompt "the king" [-n 12]
//	             [-strategy greedy|temp|topk|topp] [-temp 0.8] [-k 10]
//	             [-p 0.9] [-seed 1] [-stream] [-prefill chunked|token]
//	             [-speculate 4]
//	llm-generate -backend ngram|ffn|rnn [-corpus lines.txt] [-synthetic 500]
//	             -prompt "the king" [...]
//
// Prompt ingestion defaults to the chunked prefill fast path (the whole
// prompt as one matrix-matrix pass); -prefill token forces the one-token-
// at-a-time path instead. The two are bitwise identical, so the flag exists
// for verification and for measuring the fast path's speedup on real
// checkpoints.
//
// -speculate k enables speculative decoding: an n-gram draft model is
// distilled from the loaded model at startup, proposes blocks of k tokens,
// and the target verifies each block in one pass. Greedy output is bitwise
// identical to plain decoding; stochastic strategies keep their exact token
// distribution. Acceptance statistics are printed to stderr at exit.
//
// -cpuprofile and -memprofile write pprof profiles (CPU sampling over the
// whole run; heap snapshot at exit) so decoding performance work can be
// measured instead of guessed.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/lm"
	"repro/internal/sample"
	"repro/llm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-generate: ")
	var (
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		backend    = flag.String("backend", "transformer", "model backend: transformer, ngram, ffn or rnn")
		modelPath  = flag.String("model", "model.json", "checkpoint path (transformer backend)")
		corpusPath = flag.String("corpus", "", "training corpus for non-transformer backends; empty = synthetic")
		synthetic  = flag.Int("synthetic", 500, "synthetic corpus size when -corpus is empty")
		prompt     = flag.String("prompt", "the", "prompt text")
		n          = flag.Int("n", 12, "tokens to generate")
		strategy   = flag.String("strategy", "temp", "greedy, temp, topk or topp")
		temp       = flag.Float64("temp", 0.8, "sampling temperature")
		k          = flag.Int("k", 10, "top-k cutoff")
		p          = flag.Float64("p", 0.9, "nucleus mass")
		seed       = flag.Uint64("seed", 1, "sampling seed")
		stream     = flag.Bool("stream", false, "print tokens as they are sampled")
		prefill    = flag.String("prefill", "chunked", "prompt ingestion path: chunked (fast) or token (reference)")
		speculate  = flag.Int("speculate", 0, "speculative draft depth (0 disables)")
	)
	flag.Parse()

	stopProfiles, err := llm.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	model, err := loadBackend(*backend, *modelPath, *corpusPath, *synthetic)
	if err != nil {
		log.Fatal(err)
	}
	switch *prefill {
	case "chunked": // the default fast path
	case "token":
		model = tokenPrefill{model}
	default:
		log.Fatalf("unknown -prefill %q (want chunked or token)", *prefill)
	}

	strat, err := sample.ParseStrategy(*strategy, *temp, *p, *k)
	if err != nil {
		log.Fatal(err)
	}
	opts := []sample.Option{
		sample.WithMaxTokens(*n), sample.WithStrategy(strat), sample.WithSeed(*seed),
	}
	if *speculate > 0 {
		log.Printf("distilling n-gram draft model (depth %d)", *speculate)
		sp := &sample.Speculative{K: *speculate, Drafter: lm.DistillDrafter(model, 3, 4096, 42)}
		opts = append(opts, sample.WithSpeculative(sp))
		defer func() {
			st := sp.Stats
			if st.Drafted > 0 {
				log.Printf("speculate: %d rounds, %d/%d drafts accepted (%.0f%%)",
					st.Rounds, st.Accepted, st.Drafted, 100*float64(st.Accepted)/float64(st.Drafted))
			}
		}()
	}

	if *stream {
		fmt.Printf("%s ", *prompt)
		_, err := lm.Stream(context.Background(), model, *prompt, func(t sample.Token) error {
			fmt.Print(t.Text)
			return nil
		}, opts...)
		fmt.Println()
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	res, err := lm.Gen(model, *prompt, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %s\n", *prompt, res.Text)
}

// tokenPrefill hides the stepper's chunked Extend method, forcing the
// generation driver onto the token-by-token prefill path. Outputs are
// bitwise identical either way; this is the -prefill token reference.
type tokenPrefill struct{ lm.LanguageModel }

func (t tokenPrefill) NewStepper() sample.Stepper {
	return sample.StepperFunc(t.LanguageModel.NewStepper().Append)
}

// loadBackend resolves the -backend flag: the transformer loads its
// checkpoint; the ladder substrates train on the corpus at startup (they
// have no checkpoint format). Training uses a fixed seed so -seed varies
// only the sampling stream, never the model weights.
func loadBackend(backend, modelPath, corpusPath string, synthetic int) (lm.LanguageModel, error) {
	if backend == "transformer" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.Load(f)
	}
	lines, err := corpusLines(corpusPath, synthetic)
	if err != nil {
		return nil, err
	}
	log.Printf("training %s backend on %d lines", backend, len(lines))
	return lm.TrainBackend(backend, lines, 42)
}

// corpusLines reads one document per line, or samples the synthetic PCFG
// corpus when no path is given.
func corpusLines(path string, synthetic int) ([]string, error) {
	if path == "" {
		return llm.SyntheticCorpus(synthetic, 42), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20) // allow documents up to 1MB per line
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	return lines, sc.Err()
}
