// Command llm-router fronts a fleet of llm-serve workers as one serving
// endpoint — the replicated tier's load balancer. A single worker process
// is pinned near its memory-bandwidth floor (EXPERIMENTS.md E19-E22);
// scaling past one core means N worker processes, and the router makes
// them look like one server with the exact same API surface.
//
// Usage:
//
//	llm-router [-backends http://127.0.0.1:8372,http://127.0.0.1:8373]
//	           [-addr :8371] [-default-lease 15s]
//	           [-peers http://127.0.0.1:8381] [-sync-interval 500ms]
//	           [-max-inflight 256] [-backend-queue 32]
//	           [-attempts 3] [-retry-backoff 10ms]
//	           [-health-interval 250ms] [-fail-threshold 3]
//	           [-relay-timeout 30s] [-drain-timeout 30s]
//
// Membership is dynamic: workers join the fleet via POST /v1/register
// (llm-serve -join does this automatically), renew by heartbeating the
// same endpoint, and leave via POST /v1/deregister when they drain. A
// lease that expires without renewal ejects its worker like a failed
// probe; one lapsed far past its TTL is removed from the ring entirely.
// -backends seeds permanent members (no lease) and may be empty — a
// router can start with no workers and grow its fleet entirely through
// registration. Every membership change bumps the epoch on /v1/stats.
//
// High availability: -peers lists the base URLs of the other routers in a
// replicated router tier. Peers converge on the same leased-member set —
// and therefore the same placement — via relayed joins/leaves, push-pull
// anti-entropy every -sync-interval (POST /v1/sync), and the workers'
// own heartbeats to every router (llm-serve -join with all router URLs).
// GET /healthz answers 200 only once the router is ready: its initial
// peer-sync round has run and at least one backend is healthy — so a
// restarted router does not take traffic before it has a fleet to place
// onto. /v1/stats exports the convergence surface: ring_digest (equal
// digests = identical membership and ring), converged, and per-peer sync
// counters.
//
// Placement: requests carrying a session key (the body's "session" field,
// or the X-Session-Key header) are routed by consistent hashing, so one
// session's requests keep hitting the same worker and reuse its warm
// KV/prefix state. Unkeyed requests go to the least-loaded healthy worker,
// scored from the router's own in-flight counts plus each worker's polled
// in_flight+queued gauges.
//
// Health: every -health-interval the router probes each worker's /healthz
// and refreshes its load gauges from /v1/stats; failed proxy attempts count
// against the same per-worker failure streak (passive detection). A worker
// at -fail-threshold consecutive failures is ejected and routed around
// until a probe succeeds again. Failed idempotent requests — generate
// always, streams before the first byte — retry against the session's next
// ring replica with exponential backoff, up to -attempts placements.
// Non-streaming relays are bounded by -relay-timeout per attempt, so a
// worker that accepts a connection and never answers fails over instead of
// hanging the client; requests carrying a deadline budget (timeout_ms or
// the X-Request-Timeout-Ms header) forward the remaining budget to each
// attempt and get 504 from the router itself once it is exhausted.
//
// Admission control: more than -max-inflight concurrent requests, or a
// preferred worker already -backend-queue deep, sheds with 429 +
// Retry-After instead of queueing without bound.
//
// Endpoints mirror a worker: POST /v1/generate, POST /v1/stream (SSE
// passthrough), GET /v1/stats (router + per-backend counters), GET
// /healthz, POST /v1/drain. SIGTERM or /v1/drain drains gracefully:
// admission stops (503, /healthz not-ready) while in-flight streams finish,
// bounded by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-router: ")
	var (
		backends     = flag.String("backends", "", "comma-separated seed llm-serve base URLs (may be empty: workers join via /v1/register)")
		addr         = flag.String("addr", ":8371", "listen address")
		defaultLease = flag.Duration("default-lease", 0, "lease TTL granted to registrations that do not request one (0 = default 15s)")
		peersFlag    = flag.String("peers", "", "comma-separated base URLs of peer routers (replicated membership)")
		syncEvery    = flag.Duration("sync-interval", 0, "peer anti-entropy period (0 = default 500ms)")
		maxInflight  = flag.Int("max-inflight", 0, "global in-flight admission cap (0 = default 256, negative = unlimited)")
		backendQueue = flag.Int("backend-queue", 0, "per-backend queue-depth shed limit (0 = default 32, negative = unlimited)")
		attempts     = flag.Int("attempts", 0, "max placement attempts per request (0 = default 3)")
		retryBackoff = flag.Duration("retry-backoff", 0, "sleep before the first retry, doubling per attempt (0 = default 10ms)")
		healthEvery  = flag.Duration("health-interval", 0, "active health-probe and gauge-poll period (0 = default 250ms)")
		failThresh   = flag.Int("fail-threshold", 0, "consecutive failures that eject a worker (0 = default 3)")
		relayTimeout = flag.Duration("relay-timeout", 0, "per-attempt cap on non-streaming relays (0 = default 30s)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on SIGTERM or /v1/drain")
	)
	flag.Parse()

	splitList := func(s string) []string {
		var out []string
		for _, v := range strings.Split(s, ",") {
			if v = strings.TrimSpace(v); v != "" {
				out = append(out, v)
			}
		}
		return out
	}
	fleet := splitList(*backends)
	peers := splitList(*peersFlag)
	hs := &http.Server{
		Addr:              *addr,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	rt, err := router.New(router.Config{
		Backends:       fleet,
		DefaultLease:   *defaultLease,
		Peers:          peers,
		SyncInterval:   *syncEvery,
		MaxInFlight:    *maxInflight,
		BackendQueue:   *backendQueue,
		MaxAttempts:    *attempts,
		RetryBackoff:   *retryBackoff,
		HealthInterval: *healthEvery,
		FailThreshold:  *failThresh,
		RelayTimeout:   *relayTimeout,
	}, func() {
		// Drain mode entered (via /v1/drain or signal): stop the listener
		// once in-flight requests — streams included — have finished.
		log.Printf("draining: waiting up to %s for in-flight requests", *drainTimeout)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			log.Printf("drain timed out: %v", err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	hs.Handler = rt

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		rt.StartDrain()
	}()
	log.Printf("routing on %s (%d seed backends, %d peer routers; workers may join via /v1/register)", *addr, len(fleet), len(peers))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("shut down")
}
