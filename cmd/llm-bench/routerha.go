package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/failpoint"
	"repro/internal/grammar"
	"repro/internal/httpapi"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/transformer"
)

// haRouter is one replicated llm-router instance under the director's
// control: the router core and its HTTP listener on a fixed address, so a
// killed router can restart on the same URL — the address its peers and
// the workers' join loops keep dialing.
type haRouter struct {
	addr string
	base string
	rt   *router.Router
	hs   *http.Server
}

// kill is the ungraceful router death: connections severed, loops stopped,
// no drain, no goodbye to peers or workers.
func (r *haRouter) kill() {
	r.hs.Close()
	r.rt.Close()
}

// runRouterHAJSON is the router-high-availability chaos harness behind
// llm-bench -chaos -router-ha (E26). It self-hosts TWO peered routers over
// one worker fleet — every worker registers with and heartbeats both —
// then drives a seeded request set twice through a failover client that
// retries the other router when one refuses or vanishes: once with both
// routers stable to record reference outputs, once while a director kills
// router B mid-load, restarts it on the same address, gossips a worker
// that only B knows first-hand across to A, and partitions the peer-sync
// channel (failpoints on the send and receive sites). Invariants:
//
//  1. zero lost requests — every request reaches a terminal outcome and
//     succeeds: one router's death only costs a client-side failover;
//  2. survivors bitwise intact — all completions identical to the stable
//     run, wherever they were routed;
//  3. bounded recovery — the restarted router passes its /healthz
//     readiness gate (initial peer sync + a healthy backend) and serves
//     traffic again within the recovery bound, having relearned the whole
//     fleet from worker heartbeats and one anti-entropy exchange;
//  4. peer sync is load-bearing — a worker registered ONLY at B appears
//     at A and its lease stays fresh there through gossiped renewals;
//     partitioning the sync channel makes A's copy lapse (honest
//     divergence), and healing it revives the lease without any
//     re-register;
//  5. identical ledgers after convergence — both routers end with the
//     same member set, the same leased flags, and the same ring digest
//     (epochs are local rebuild counters and legitimately differ).
//
// Results (outcome tallies, failover counts, recovery timings, divergence
// and reconvergence timings, per-site fire counts) go to
// BENCH_chaos_router_ha.json.
func runRouterHAJSON(dir string, o chaosOpts) error {
	if o.conns < 1 || o.requests < 1 || o.tokens < 1 {
		return fmt.Errorf("-conns, -requests and -load-tokens must be positive")
	}
	failpoint.Disarm()
	defer failpoint.Disarm()
	const (
		leaseTTL     = 250 * time.Millisecond
		hbEvery      = 60 * time.Millisecond
		syncEvery    = 40 * time.Millisecond
		recoverBound = 5 * time.Second
		settleBound  = 10 * time.Second
		driveSpan    = 4 * time.Second // chaos-phase pacing window
	)

	log.Print("training the router-HA fleet transformer")
	lines := corpus.PCFGText(grammar.TinyEnglish(), 200, 8, mathx.NewRNG(o.seed))
	model, _, err := core.Train(lines, core.Config{
		Tokenizer: core.WordTok,
		Model: transformer.Config{
			Dim: 16, Layers: 1, Heads: 2, Window: o.tokens + 16,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 30, Seed: o.seed,
	})
	if err != nil {
		return err
	}
	drafter := lm.DistillDrafter(model, 3, 512, o.seed)

	// Reserve both router addresses first: each router's config needs its
	// peer's URL before either exists.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	urlOf := func(ln net.Listener) string { return "http://" + ln.Addr().String() }
	baseA, baseB := urlOf(lnA), urlOf(lnB)

	// startRouter serves one peered router on ln. FailThreshold is high so
	// worker liveness is governed by leases (the replicated state under
	// test); ForgetAfter is long so nothing silently leaves the ring
	// mid-run.
	startRouter := func(ln net.Listener, peer string) (*haRouter, error) {
		rt, err := router.New(router.Config{
			MaxAttempts: 4, RetryBackoff: 2 * time.Millisecond,
			HealthInterval: 20 * time.Millisecond, FailThreshold: 50,
			RelayTimeout: 5 * time.Second,
			DefaultLease: leaseTTL, ForgetAfter: 30 * time.Second,
			Peers: []string{peer}, SyncInterval: syncEvery,
		}, nil)
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: rt}
		go hs.Serve(ln)
		return &haRouter{addr: ln.Addr().String(), base: urlOf(ln), rt: rt, hs: hs}, nil
	}
	rtA, err := startRouter(lnA, baseB)
	if err != nil {
		return err
	}
	defer rtA.kill()
	rtB, err := startRouter(lnB, baseA)
	if err != nil {
		return err
	}
	defer func() { rtB.kill() }()

	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: o.conns + 4},
	}

	// newWorker starts one llm-serve stack joined to the given routers.
	newWorker := func(routers []string) (*churnWorker, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := serve.New(model, serve.Config{
			MaxBatch: 4, CoalesceWait: time.Millisecond, PrefillChunk: 4,
			Speculate: 2, Drafter: drafter,
		})
		hs := &http.Server{Handler: httpapi.New(srv, nil)}
		go hs.Serve(ln)
		base := "http://" + ln.Addr().String()
		j, err := httpapi.StartJoiner(httpapi.JoinConfig{
			Routers: routers, Self: base, Lease: leaseTTL, Interval: hbEvery,
		})
		if err != nil {
			hs.Close()
			srv.Close()
			return nil, err
		}
		return &churnWorker{addr: ln.Addr().String(), base: base, srv: srv, hs: hs, joiner: j}, nil
	}

	waitUntil := func(what string, bound time.Duration, cond func() bool) error {
		deadline := time.Now().Add(bound)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out after %s waiting for %s", bound, what)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	// leaseAt reads one router's view of one member's lease: present,
	// leased, and the remaining milliseconds (negative once lapsed).
	leaseAt := func(rt *router.Router, base string) (present bool, leaseMS int64) {
		for _, b := range rt.Stats().Backends {
			if b.Name == base && b.Leased {
				return true, b.LeaseMS
			}
		}
		return false, 0
	}

	// Phase 0 — the fleet assembles: three workers join BOTH routers; both
	// converge on the same three-member ring.
	log.Print("phase 0: 3 workers joining both routers")
	const baseWorkers = 3
	workers := make([]*churnWorker, 0, baseWorkers+1)
	defer func() {
		for _, w := range workers {
			w.kill()
		}
	}()
	for i := 0; i < baseWorkers; i++ {
		w, err := newWorker([]string{baseA, baseB})
		if err != nil {
			return err
		}
		workers = append(workers, w)
	}
	bothConverged := func(members int) func() bool {
		return func() bool {
			a, b := rtA.rt.Stats(), rtB.rt.Stats()
			if a.Members != members || b.Members != members || a.RingDigest != b.RingDigest {
				return false
			}
			for _, st := range [][]router.BackendStats{a.Backends, b.Backends} {
				for _, bk := range st {
					if !bk.Healthy {
						return false
					}
				}
			}
			return true
		}
	}
	if err := waitUntil("initial fleet registration at both routers", settleBound, bothConverged(baseWorkers)); err != nil {
		return err
	}

	waitFleetIdle := func() error {
		deadline := time.Now().Add(settleBound)
		for _, w := range workers {
			for {
				st := w.srv.Stats()
				if st.InFlight == 0 && st.Queued == 0 &&
					st.Requests == st.Completed+st.Cancelled+st.Failed {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("lost requests: worker %s never reconciled: %+v", w.base, st)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		return nil
	}

	// Phase 1 — stable reference run through the failover client with both
	// routers serving.
	log.Printf("phase 1: stable two-router reference run (%d requests)", o.requests)
	baseline, _ := driveHA(client, []string{baseA, baseB}, o, 0)
	for i, r := range baseline {
		if r.outcome != chaosOK {
			return fmt.Errorf("stable-run request %d failed (status %d): the baseline must be clean", i, r.status)
		}
	}
	if err := waitFleetIdle(); err != nil {
		return err
	}

	// Phase 2 — the same request set, paced across the director's schedule:
	// router kill/restart, gossip-only membership, peer partition and heal.
	// The standing plan keeps mild latency/error pressure on the sync
	// channel the whole phase; the partition window rearms it to sever the
	// channel completely.
	log.Print("phase 2: HA run (router kill/restart, gossip join, peer partition)")
	mildRules := []failpoint.Rule{
		{Site: failpoint.RouterPeerSend, Kind: failpoint.KindLatency, Prob: 0.3, Sleep: 2 * time.Millisecond},
		{Site: failpoint.RouterPeerSend, Kind: failpoint.KindError, Prob: 0.1},
		{Site: failpoint.JoinHeartbeat, Kind: failpoint.KindError, Prob: 0.1},
	}
	partitionRules := append([]failpoint.Rule{
		{Site: failpoint.RouterPeerSend, Kind: failpoint.KindError},
		{Site: failpoint.RouterPeerRecv, Kind: failpoint.KindError},
	}, mildRules[2:]...)
	if err := failpoint.Arm(failpoint.Plan{Seed: o.seed, Rules: mildRules}); err != nil {
		return err
	}
	// Arm replaces the plan and resets its counters, so fire counts are
	// banked at every transition.
	var firedMu sync.Mutex
	fired := map[string]uint64{}
	bankFired := func() {
		firedMu.Lock()
		for site, st := range failpoint.Stats() {
			fired[site] += st.Fired
		}
		firedMu.Unlock()
	}

	var (
		recoverReady   time.Duration // router restart -> /healthz 200
		recoverTraffic time.Duration // router restart -> a request served via it
		gossipJoin     time.Duration // B-only register -> leased at A
		divergeLapse   time.Duration // partition armed -> A's copy lapsed
		healRevive     time.Duration // partition healed -> A's copy fresh again
	)
	dirErr := make(chan error, 1)
	go func() {
		dirErr <- func() error {
			// Let the paced drive establish traffic through both routers.
			time.Sleep(400 * time.Millisecond)

			// Ungraceful router kill: no drain, no deregistration relay.
			// Clients fail over; workers keep heartbeating the survivor.
			log.Printf("director: killing router B (%s)", baseB)
			rtB.kill()
			time.Sleep(300 * time.Millisecond)

			// Restart on the same address: B comes back empty, gates
			// readiness on its initial anti-entropy round, and relearns the
			// fleet from A plus the workers' own heartbeats.
			log.Print("director: restarting router B on its old address")
			restartAt := time.Now()
			lnB2, err := net.Listen("tcp", rtB.addr)
			if err != nil {
				return fmt.Errorf("rebinding router B: %w", err)
			}
			reborn, err := startRouter(lnB2, baseA)
			if err != nil {
				return err
			}
			rtB = reborn
			if err := waitUntil("restarted router readiness", recoverBound, func() bool {
				resp, err := client.Get(baseB + "/healthz")
				if err != nil {
					return false
				}
				resp.Body.Close()
				return resp.StatusCode == http.StatusOK
			}); err != nil {
				return err
			}
			recoverReady = time.Since(restartAt)
			if err := waitUntil("restarted router serving traffic", recoverBound, func() bool {
				r := postGenerate(client, baseB, httpapi.GenRequest{
					Prompt: "the king", Tokens: 2, Seed: 1,
				})
				return r.outcome == chaosOK
			}); err != nil {
				return err
			}
			recoverTraffic = time.Since(restartAt)
			if err := waitUntil("restarted router reconverging", recoverBound, bothConverged(baseWorkers)); err != nil {
				return err
			}

			// Gossip-only membership: a 4th worker registers ONLY at B; A
			// may learn it exclusively through peer sync, and must then keep
			// its lease fresh on gossiped renewals alone.
			log.Print("director: cold-joining a worker at router B only")
			joinAt := time.Now()
			w4, err := newWorker([]string{baseB})
			if err != nil {
				return fmt.Errorf("gossip-only join: %w", err)
			}
			workers = append(workers, w4)
			if err := waitUntil("gossiped member appearing at router A", recoverBound, func() bool {
				present, leaseMS := leaseAt(rtA.rt, w4.base)
				return present && leaseMS > 0
			}); err != nil {
				return err
			}
			gossipJoin = time.Since(joinAt)

			// Partition the peer-sync channel completely. A's only source
			// of w4 renewals is gone: its copy of the lease must lapse —
			// honest divergence, not a silent stale member.
			log.Print("director: partitioning peer sync")
			bankFired()
			if err := failpoint.Arm(failpoint.Plan{Seed: o.seed + 1, Rules: partitionRules}); err != nil {
				return err
			}
			partitionAt := time.Now()
			if err := waitUntil("partitioned router A's gossip lease lapsing", recoverBound, func() bool {
				present, leaseMS := leaseAt(rtA.rt, w4.base)
				return present && leaseMS < 0
			}); err != nil {
				return err
			}
			divergeLapse = time.Since(partitionAt)

			// Heal: back to the mild plan. Anti-entropy resumes and A's
			// copy of w4 must come back to life without any re-register.
			log.Print("director: healing the partition")
			bankFired()
			if err := failpoint.Arm(failpoint.Plan{Seed: o.seed + 2, Rules: mildRules}); err != nil {
				return err
			}
			healAt := time.Now()
			if err := waitUntil("healed gossip reviving the lease at A", recoverBound, func() bool {
				present, leaseMS := leaseAt(rtA.rt, w4.base)
				return present && leaseMS > 0
			}); err != nil {
				return err
			}
			healRevive = time.Since(healAt)
			return nil
		}()
	}()

	haResults, failovers := driveHA(client, []string{baseA, baseB}, o, driveSpan/time.Duration(o.requests))
	if err := <-dirErr; err != nil {
		return err
	}
	bankFired()
	failpoint.Disarm()

	// Invariant 1: zero lost requests — a router death is a failover, never
	// a failure the client sees.
	var nOK, nFailed, nSevered, nMismatch int
	for i, r := range haResults {
		switch r.outcome {
		case chaosOK:
			nOK++
			if r.completion != baseline[i].completion {
				nMismatch++
				log.Printf("BITWISE MISMATCH request %d: %q != %q", i, r.completion, baseline[i].completion)
			}
		case chaosFailed:
			nFailed++
			log.Printf("request %d failed with status %d", i, r.status)
		case chaosSevered:
			nSevered++
			log.Printf("request %d severed", i)
		}
	}
	if nOK != o.requests {
		return fmt.Errorf("lost requests across the router kill: %d ok + %d failed + %d severed != %d sent all-ok",
			nOK, nFailed, nSevered, o.requests)
	}
	// Invariant 2: survivors bitwise intact.
	if nMismatch > 0 {
		return fmt.Errorf("%d HA-phase completions diverged from the stable run", nMismatch)
	}
	// Invariant 3: bounded recovery (already enforced by the waits; the
	// timings go to the report).
	// The kill must actually have cost somebody a failover, and the chaos
	// plans must have fired.
	if failovers == 0 {
		return fmt.Errorf("no request ever failed over: the router kill was invisible and proved nothing")
	}
	var totalFired uint64
	for _, n := range fired {
		totalFired += n
	}
	if totalFired == 0 {
		return fmt.Errorf("no fault fired at seed %d; the HA run proved nothing", o.seed)
	}

	// Invariant 5: identical ledgers after convergence — same members, same
	// leased flags, same ring digest, both ready.
	if err := waitUntil("final two-router convergence", settleBound, bothConverged(baseWorkers+1)); err != nil {
		return err
	}
	if err := waitFleetIdle(); err != nil {
		return err
	}
	ledger := func(rt *router.Router) string {
		st := rt.Stats()
		rows := make([]string, 0, len(st.Backends))
		for _, b := range st.Backends {
			rows = append(rows, fmt.Sprintf("%s leased=%v", b.Name, b.Leased))
		}
		sort.Strings(rows)
		return strings.Join(rows, "\n") + "\ndigest=" + st.RingDigest
	}
	la, lb := ledger(rtA.rt), ledger(rtB.rt)
	if la != lb {
		return fmt.Errorf("membership ledgers diverge after convergence:\nrouter A:\n%s\nrouter B:\n%s", la, lb)
	}

	stA, stB := rtA.rt.Stats(), rtB.rt.Stats()
	metrics := map[string]float64{
		"baseline_ok":        float64(len(baseline)),
		"ha_ok":              float64(nOK),
		"ha_failed":          float64(nFailed),
		"ha_severed":         float64(nSevered),
		"failovers":          float64(failovers),
		"bitwise_mismatches": float64(nMismatch),
		"recover_ready_ms":   ms(recoverReady),
		"recover_traffic_ms": ms(recoverTraffic),
		"gossip_join_ms":     ms(gossipJoin),
		"diverge_lapse_ms":   ms(divergeLapse),
		"heal_revive_ms":     ms(healRevive),
		"members_final":      float64(stA.Members),
		"router_a_syncs_in":  float64(stA.SyncsIn),
		"router_b_syncs_in":  float64(stB.SyncsIn),
		"faults_fired":       float64(totalFired),
	}
	for site, n := range fired {
		metrics["fired_"+strings.ReplaceAll(site, "/", "_")] = float64(n)
	}

	res := perfResult{
		Bench: "chaos_router_ha",
		Shape: map[string]int{
			"routers": 2, "workers": baseWorkers + 1, "conns": o.conns,
			"requests": o.requests, "tokens": o.tokens,
		},
		Reps:     o.requests,
		Metrics:  metrics,
		UnixTime: time.Now().Unix(),
	}
	if err := writeBench(filepath.Join(dir, "BENCH_chaos_router_ha.json"), res); err != nil {
		return err
	}
	fmt.Printf("router-ha: %d requests → %d ok, 0 lost, 0 bitwise mismatches across a router kill (%d failovers); %d faults fired\n",
		o.requests, nOK, failovers, totalFired)
	fmt.Printf("recovery: ready %.0fms, traffic %.0fms after restart; gossip join %.0fms, partition lapse %.0fms, heal revive %.0fms; ledgers identical (digest %s)\n",
		ms(recoverReady), ms(recoverTraffic), ms(gossipJoin), ms(divergeLapse), ms(healRevive), stA.RingDigest)
	return nil
}

// driveHA issues the seeded request set through o.conns concurrent clients
// against a replicated router tier. Each request prefers one router
// (alternating by index, so both carry traffic) and fails over to the
// others on a severed connection or a refusal (429/5xx) — the client-side
// half of router HA. failovers counts requests that needed more than their
// preferred router. A non-zero pace spreads request starts so the run
// spans the director's schedule.
func driveHA(client *http.Client, bases []string, o chaosOpts, pace time.Duration) (results []chaosResult, failovers int) {
	results = make([]chaosResult, o.requests)
	var nFailover atomic.Int64
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < o.conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.requests {
					return
				}
				if pace > 0 {
					if wait := time.Until(start.Add(time.Duration(i) * pace)); wait > 0 {
						time.Sleep(wait)
					}
				}
				req := httpapi.GenRequest{
					Prompt: "the king", Tokens: o.tokens, Seed: uint64(i + 1),
				}
				if i%3 == 0 {
					req.Session = fmt.Sprintf("sess-%d", i%7)
				}
				// Two passes over the replicas, preferred router first:
				// enough to ride out one router being down plus a transient
				// refusal at the survivor. Any request that went past its
				// preferred router counts as one failover.
				var r chaosResult
				for attempt := 0; attempt < 2*len(bases); attempt++ {
					base := bases[(i+attempt)%len(bases)]
					r = postGenerate(client, base, req)
					if r.outcome == chaosOK {
						if attempt > 0 {
							nFailover.Add(1)
						}
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return results, int(nFailover.Load())
}
