package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/failpoint"
	"repro/internal/grammar"
	"repro/internal/httpapi"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/transformer"
)

// churnWorker is one self-hosted llm-serve stack under the churn
// director's control: a batching server, an HTTP listener on a fixed
// address (so a killed worker can restart on the same URL — the ring
// identity), and the join loop keeping its router lease alive.
type churnWorker struct {
	addr   string // fixed host:port, stable across kill/restart
	base   string
	srv    *serve.Server
	hs     *http.Server
	joiner *httpapi.Joiner
}

// kill is the ungraceful death: heartbeats stop without deregistering (the
// router must notice via lease expiry), connections are severed, the
// batching loop dies.
func (w *churnWorker) kill() {
	if w.joiner != nil {
		w.joiner.Stop()
	}
	w.hs.Close()
	w.srv.Close()
}

// runChurnJSON is the membership-churn chaos harness behind
// llm-bench -chaos -churn (E25). It self-hosts a router that starts with
// an EMPTY fleet — every worker joins via lease-based registration — then
// drives a seeded request set twice: once over the stable fleet to record
// reference outputs and session placement, once while a director executes
// a churn schedule against the live fleet (ungraceful kill → lease-expiry
// ejection → restart and re-register on the same URL → a cold worker
// joining on a new URL → a graceful leave through /v1/deregister), with
// failpoints armed on the register/heartbeat control plane the whole
// while. Invariants asserted:
//
//  1. zero lost requests — every churn-phase request reaches a terminal
//     outcome and succeeds (the router retries across the kill), and
//     every worker's counters reconcile after the run;
//  2. survivors bitwise intact — all churn-phase completions are
//     identical to the churn-free run, regardless of where they landed;
//  3. minimal remap — a session changes owner only if its old owner left
//     the fleet or its new owner is the cold joiner; everyone else's
//     placement survives two ejections and two membership epochs;
//  4. bounded readmission — the killed worker, once restarted, is healthy
//     and receiving session traffic again within the rejoin bound;
//  5. the membership ledger adds up — final epoch, join/leave/expiry
//     counters, and member count match the schedule exactly.
//
// Results (outcome tallies, ejection/rejoin timings, per-site fire
// counts, the epoch ledger) go to BENCH_chaos_churn.json.
func runChurnJSON(dir string, o chaosOpts) error {
	if o.conns < 1 || o.requests < 1 || o.tokens < 1 {
		return fmt.Errorf("-conns, -requests and -load-tokens must be positive")
	}
	failpoint.Disarm()
	const (
		leaseTTL    = 250 * time.Millisecond
		hbEvery     = 60 * time.Millisecond
		rejoinBound = 5 * time.Second
		settleBound = 10 * time.Second
		driveSpan   = 3 * time.Second // churn-phase pacing window
	)

	log.Print("training the churn-fleet transformer")
	lines := corpus.PCFGText(grammar.TinyEnglish(), 200, 8, mathx.NewRNG(o.seed))
	model, _, err := core.Train(lines, core.Config{
		Tokenizer: core.WordTok,
		Model: transformer.Config{
			Dim: 16, Layers: 1, Heads: 2, Window: o.tokens + 16,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 30, Seed: o.seed,
	})
	if err != nil {
		return err
	}
	drafter := lm.DistillDrafter(model, 3, 512, o.seed)

	// The router starts with no members at all: the whole fleet arrives
	// through /v1/register. FailThreshold is set high so the kill below is
	// detected by lease expiry (the path under test), not probe ejection;
	// ForgetAfter is long so the dead worker's ring slot survives until it
	// restarts and renews.
	rt, err := router.New(router.Config{
		MaxAttempts: 4, RetryBackoff: 2 * time.Millisecond,
		HealthInterval: 20 * time.Millisecond, FailThreshold: 50,
		RelayTimeout: 5 * time.Second,
		DefaultLease: leaseTTL, ForgetAfter: 30 * time.Second,
	}, nil)
	if err != nil {
		return err
	}
	defer rt.Close()
	front, stopFront, err := listenAndServe(rt)
	if err != nil {
		return err
	}
	defer stopFront()
	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: o.conns + 4},
	}

	newWorker := func(addr string) (*churnWorker, error) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		srv := serve.New(model, serve.Config{
			MaxBatch: 4, CoalesceWait: time.Millisecond, PrefillChunk: 4,
			Speculate: 2, Drafter: drafter,
		})
		hs := &http.Server{Handler: httpapi.New(srv, nil)}
		go hs.Serve(ln)
		base := "http://" + ln.Addr().String()
		j, err := httpapi.StartJoiner(httpapi.JoinConfig{
			Router: front, Self: base, Lease: leaseTTL, Interval: hbEvery,
		})
		if err != nil {
			hs.Close()
			srv.Close()
			return nil, err
		}
		return &churnWorker{addr: ln.Addr().String(), base: base, srv: srv, hs: hs, joiner: j}, nil
	}

	waitUntil := func(what string, bound time.Duration, cond func() bool) error {
		deadline := time.Now().Add(bound)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out after %s waiting for %s", bound, what)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	healthyIn := func(base string) func() bool {
		return func() bool {
			for _, b := range rt.Stats().Backends {
				if b.Name == base {
					return b.Healthy
				}
			}
			return false
		}
	}

	// Phase 0 — the fleet assembles itself: three workers join the empty
	// router; each join is one epoch.
	log.Print("phase 0: 3 workers joining the empty router")
	const baseWorkers = 3
	workers := make([]*churnWorker, 0, baseWorkers+1)
	defer func() {
		for _, w := range workers {
			w.kill()
		}
	}()
	for i := 0; i < baseWorkers; i++ {
		w, err := newWorker("127.0.0.1:0")
		if err != nil {
			return err
		}
		workers = append(workers, w)
	}
	if err := waitUntil("initial fleet registration", settleBound, func() bool {
		st := rt.Stats()
		if st.Members != baseWorkers {
			return false
		}
		for _, b := range st.Backends {
			if !b.Healthy {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	if e := rt.Stats().Epoch; e != baseWorkers {
		return fmt.Errorf("membership epoch after %d joins is %d, want %d", baseWorkers, e, baseWorkers)
	}

	// liveWorkers maps base URL → batching server for ownership probing
	// and reconciliation; the restarted worker replaces its old entry.
	liveWorkers := func() map[string]*serve.Server {
		m := make(map[string]*serve.Server, len(workers))
		for _, w := range workers {
			m[w.base] = w.srv
		}
		return m
	}
	waitFleetIdle := func() error {
		deadline := time.Now().Add(settleBound)
		for base, srv := range liveWorkers() {
			for {
				st := srv.Stats()
				if st.InFlight == 0 && st.Queued == 0 &&
					st.Requests == st.Completed+st.Cancelled+st.Failed {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("lost requests: worker %s never reconciled: %+v", base, st)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		return nil
	}
	// ownerOf locates one session's worker empirically: issue a keyed
	// request through the router and see whose request counter moved.
	// Only valid while no other traffic is running.
	ownerOf := func(session string) (string, error) {
		live := liveWorkers()
		before := make(map[string]uint64, len(live))
		for base, srv := range live {
			before[base] = srv.Stats().Requests
		}
		r := postGenerate(client, front, httpapi.GenRequest{
			Prompt: "the king", Tokens: 2, Seed: 1, Session: session,
		})
		if r.outcome != chaosOK {
			return "", fmt.Errorf("session-probe %q failed: status %d", session, r.status)
		}
		for base, srv := range live {
			if srv.Stats().Requests > before[base] {
				return base, nil
			}
		}
		return "", fmt.Errorf("session-probe %q landed on no live worker", session)
	}

	// Phase 1 — churn-free reference run: record every completion and the
	// session→worker placement to diff against after the churn.
	log.Printf("phase 1: churn-free reference run (%d requests)", o.requests)
	baseline := driveChurn(client, front, o, 0)
	for i, r := range baseline {
		if r.outcome != chaosOK {
			return fmt.Errorf("churn-free request %d failed (status %d): the baseline must be clean", i, r.status)
		}
	}
	if err := waitFleetIdle(); err != nil {
		return err
	}
	ownersBefore := map[string]string{}
	for s := 0; s < 7; s++ {
		session := fmt.Sprintf("sess-%d", s)
		owner, err := ownerOf(session)
		if err != nil {
			return err
		}
		ownersBefore[session] = owner
	}
	// The rejoin-to-traffic measurement needs a session pinned to the
	// worker we will kill; probe extra keys until one lands there.
	victim := workers[1]
	victimSession := ""
	for s, owner := range ownersBefore {
		if owner == victim.base {
			victimSession = s
			break
		}
	}
	for extra := 0; victimSession == "" && extra < 64; extra++ {
		session := fmt.Sprintf("probe-%d", extra)
		owner, err := ownerOf(session)
		if err != nil {
			return err
		}
		ownersBefore[session] = owner
		if owner == victim.base {
			victimSession = session
		}
	}
	if victimSession == "" {
		return fmt.Errorf("no session hashed to the kill target %s in 64 probes", victim.base)
	}

	// Phase 2 — the same request set, paced over ~3s, while the director
	// executes the churn schedule and failpoints attack the register/
	// heartbeat control plane.
	log.Print("phase 2: churn run (kill, lease-expiry, restart, cold join, graceful leave)")
	if err := failpoint.Arm(failpoint.Plan{Seed: o.seed, Rules: []failpoint.Rule{
		{Site: failpoint.JoinHeartbeat, Kind: failpoint.KindError, Prob: 0.15},
		{Site: failpoint.RouterRegister, Kind: failpoint.KindLatency, Prob: 0.2, Sleep: 5 * time.Millisecond},
		{Site: failpoint.RouterRegister, Kind: failpoint.KindError, Prob: 0.1},
	}}); err != nil {
		return err
	}

	var (
		expiryEject   time.Duration // kill → router marks the worker unhealthy
		rejoinHealthy time.Duration // restart → router marks it healthy
		rejoinTraffic time.Duration // restart → its sessions land on it again
	)
	dirErr := make(chan error, 1)
	go func() {
		dirErr <- func() error {
			// Let the paced drive establish traffic first.
			time.Sleep(400 * time.Millisecond)

			// Ungraceful kill: no deregister — only the lease can tell.
			log.Printf("director: killing %s (no deregister)", victim.base)
			killedAt := time.Now()
			victim.kill()
			if err := waitUntil("lease-expiry ejection of the killed worker", rejoinBound, func() bool {
				return !healthyIn(victim.base)()
			}); err != nil {
				return err
			}
			expiryEject = time.Since(killedAt)

			// Restart on the same address: re-registration renews the
			// existing (lapsed) membership, so no epoch changes and the
			// worker's ring arcs — its sessions — come straight back.
			log.Printf("director: restarting %s on its old address", victim.base)
			restartAt := time.Now()
			reborn, err := newWorker(victim.addr)
			if err != nil {
				return fmt.Errorf("restarting killed worker: %w", err)
			}
			workers[1] = reborn
			if err := waitUntil("restarted worker turning healthy", rejoinBound, healthyIn(reborn.base)); err != nil {
				return err
			}
			rejoinHealthy = time.Since(restartAt)
			// Traffic bound: its old session must route back to it.
			for {
				if reborn.srv.Stats().Requests > 0 {
					break
				}
				if time.Since(restartAt) > rejoinBound {
					return fmt.Errorf("restarted worker got no traffic within %s", rejoinBound)
				}
				postGenerate(client, front, httpapi.GenRequest{
					Prompt: "the king", Tokens: 2, Seed: 1, Session: victimSession,
				})
			}
			rejoinTraffic = time.Since(restartAt)

			// Cold join: a brand-new worker on a new URL. One epoch.
			log.Print("director: cold-joining a 4th worker")
			cold, err := newWorker("127.0.0.1:0")
			if err != nil {
				return fmt.Errorf("cold join: %w", err)
			}
			workers = append(workers, cold)
			if err := waitUntil("cold joiner turning healthy", rejoinBound, healthyIn(cold.base)); err != nil {
				return err
			}

			// Graceful leave: deregister explicitly (retrying through the
			// injected control-plane faults); the worker itself keeps
			// serving whatever is still in flight on it.
			leaver := workers[2]
			log.Printf("director: graceful leave of %s", leaver.base)
			var leaveErr error
			for attempt := 0; attempt < 10; attempt++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				leaveErr = leaver.joiner.Leave(ctx)
				cancel()
				if leaveErr == nil {
					break
				}
			}
			if leaveErr != nil {
				return fmt.Errorf("graceful leave never succeeded: %w", leaveErr)
			}
			return nil
		}()
	}()

	churn := driveChurn(client, front, o, driveSpan/time.Duration(o.requests))
	if err := <-dirErr; err != nil {
		failpoint.Disarm()
		return err
	}
	fired := failpoint.Stats()
	failpoint.Disarm()

	// Invariant 1: zero lost requests — under churn every single request
	// must still succeed (kills are retried, leaves are drained).
	var nOK, nFailed, nSevered, nMismatch int
	for i, r := range churn {
		switch r.outcome {
		case chaosOK:
			nOK++
			if r.completion != baseline[i].completion {
				nMismatch++
				log.Printf("BITWISE MISMATCH request %d: %q != %q", i, r.completion, baseline[i].completion)
			}
		case chaosFailed:
			nFailed++
			log.Printf("request %d failed with status %d", i, r.status)
		case chaosSevered:
			nSevered++
			log.Printf("request %d severed", i)
		}
	}
	if nOK != o.requests {
		return fmt.Errorf("lost requests under churn: %d ok + %d failed + %d severed != %d sent all-ok",
			nOK, nFailed, nSevered, o.requests)
	}
	// Invariant 2: survivors bitwise intact.
	if nMismatch > 0 {
		return fmt.Errorf("%d churn-phase completions diverged from the churn-free run", nMismatch)
	}
	// The chaos plan must actually have attacked the membership path.
	var totalFired uint64
	for _, st := range fired {
		totalFired += st.Fired
	}
	if totalFired == 0 {
		return fmt.Errorf("no membership fault fired at seed %d; the churn run proved nothing", o.seed)
	}

	// Settle: the fleet is w0, the reborn w1, and the cold joiner — all
	// healthy — and every worker (the leaver included) reconciles.
	if err := waitUntil("post-churn fleet settling", settleBound, func() bool {
		st := rt.Stats()
		if st.Members != baseWorkers {
			return false
		}
		for _, b := range st.Backends {
			if !b.Healthy {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	if err := waitFleetIdle(); err != nil {
		return err
	}

	// Invariant 5: the membership ledger matches the schedule — 3 initial
	// joins + 1 cold join, 1 graceful leave, the restart NOT a join (it
	// renewed its lapsed membership), ≥1 lease expiry, nothing forgotten,
	// and exactly 5 ring rebuilds.
	st := rt.Stats()
	if st.Joins != baseWorkers+1 || st.Leaves != 1 || st.Forgotten != 0 {
		return fmt.Errorf("membership ledger off: joins=%d leaves=%d forgotten=%d, want %d/1/0",
			st.Joins, st.Leaves, st.Forgotten, baseWorkers+1)
	}
	if st.LeaseExpiries < 1 {
		return fmt.Errorf("the kill never surfaced as a lease expiry")
	}
	if want := uint64(baseWorkers + 2); st.Epoch != want {
		return fmt.Errorf("final epoch %d, want %d (3 joins + cold join + leave)", st.Epoch, want)
	}

	// Invariant 3: minimal remap — re-probe every recorded session; an
	// owner change is legal only when the old owner left the fleet or the
	// new owner is the cold joiner.
	coldBase := workers[3].base
	leaverBase := workers[2].base
	var moved, unexplained int
	for session, oldOwner := range ownersBefore {
		newOwner, err := ownerOf(session)
		if err != nil {
			return err
		}
		if newOwner == oldOwner {
			continue
		}
		moved++
		if oldOwner != leaverBase && newOwner != coldBase {
			unexplained++
			log.Printf("UNEXPLAINED REMAP session %q: %s -> %s", session, oldOwner, newOwner)
		}
	}
	if unexplained > 0 {
		return fmt.Errorf("%d sessions remapped without a membership reason", unexplained)
	}

	metrics := map[string]float64{
		"baseline_ok":        float64(len(baseline)),
		"churn_ok":           float64(nOK),
		"churn_failed":       float64(nFailed),
		"churn_severed":      float64(nSevered),
		"bitwise_mismatches": float64(nMismatch),
		"epoch_final":        float64(st.Epoch),
		"joins":              float64(st.Joins),
		"leaves":             float64(st.Leaves),
		"lease_expiries":     float64(st.LeaseExpiries),
		"forgotten":          float64(st.Forgotten),
		"expiry_eject_ms":    ms(expiryEject),
		"rejoin_healthy_ms":  ms(rejoinHealthy),
		"rejoin_traffic_ms":  ms(rejoinTraffic),
		"sessions_tracked":   float64(len(ownersBefore)),
		"sessions_moved":     float64(moved),
		"faults_fired":       float64(totalFired),
	}
	for site, fs := range fired {
		metrics["fired_"+strings.ReplaceAll(site, "/", "_")] = float64(fs.Fired)
	}

	res := perfResult{
		Bench: "chaos_churn",
		Shape: map[string]int{
			"workers": baseWorkers, "conns": o.conns,
			"requests": o.requests, "tokens": o.tokens,
		},
		Reps:     o.requests,
		Metrics:  metrics,
		UnixTime: time.Now().Unix(),
	}
	if err := writeBench(filepath.Join(dir, "BENCH_chaos_churn.json"), res); err != nil {
		return err
	}
	fmt.Printf("churn: %d requests → %d ok, 0 lost, 0 bitwise mismatches across kill/restart/join/leave; %d control-plane faults fired\n",
		o.requests, nOK, totalFired)
	fmt.Printf("membership: epoch %d (joins %d, leaves %d, expiries %d); eject %.0fms after kill, rejoin healthy %.0fms, traffic %.0fms; %d/%d sessions moved, all explained\n",
		st.Epoch, st.Joins, st.Leaves, st.LeaseExpiries,
		ms(expiryEject), ms(rejoinHealthy), ms(rejoinTraffic), moved, len(ownersBefore))
	return nil
}

// driveChurn issues the seeded request set — identical bodies to the
// baseline run by construction — through o.conns concurrent clients. A
// non-zero pace spreads request starts over time (request i is not issued
// before i*pace) so the run spans the director's churn schedule instead of
// racing past it.
func driveChurn(client *http.Client, base string, o chaosOpts, pace time.Duration) []chaosResult {
	results := make([]chaosResult, o.requests)
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < o.conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.requests {
					return
				}
				if pace > 0 {
					if wait := time.Until(start.Add(time.Duration(i) * pace)); wait > 0 {
						time.Sleep(wait)
					}
				}
				req := httpapi.GenRequest{
					Prompt: "the king", Tokens: o.tokens, Seed: uint64(i + 1),
				}
				if i%3 == 0 {
					req.Session = fmt.Sprintf("sess-%d", i%7)
				}
				results[i] = postGenerate(client, base, req)
			}
		}()
	}
	wg.Wait()
	return results
}
