// Command llm-bench scores a model on the synthetic benchmark suite (the
// repository's stand-in for BIG-bench, §4 of the paper) at several few-shot
// settings and prints a leaderboard. It either loads a checkpoint or trains
// a fresh tiny model on the synthetic corpus.
//
// Usage:
//
//	llm-bench [-model model.json] [-shots 0,3] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/transformer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-bench: ")
	var (
		modelPath = flag.String("model", "", "checkpoint path; empty = train a fresh tiny model")
		shotsFlag = flag.String("shots", "0,3", "comma-separated shot counts")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var model *core.LLM
	name := "fresh-tiny"
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = core.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name = *modelPath
	} else {
		lines := corpus.PCFGText(grammar.TinyEnglish(), 400, 10, mathx.NewRNG(*seed))
		var err error
		model, _, err = core.Train(lines, core.Config{
			Tokenizer: core.WordTok,
			Model: transformer.Config{
				Dim: 32, Layers: 2, Heads: 2, Window: 16,
				Pos: transformer.PosLearned, Act: nn.GELU,
			},
			Steps: 300, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Println("trained a fresh tiny model on the synthetic corpus")
	}

	var shots []int
	for _, s := range strings.Split(*shotsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -shots: %v", err)
		}
		shots = append(shots, v)
	}

	var lb eval.Leaderboard
	for _, task := range eval.Suite(mathx.NewRNG(*seed + 1)) {
		for _, sh := range shots {
			acc := eval.ScoreTask(model, task, eval.PromptConfig{Shots: sh}, mathx.NewRNG(*seed+2))
			lb.Add(name, task.Name, sh, acc)
		}
	}
	fmt.Print(lb.Format())
}
