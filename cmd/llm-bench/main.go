// Command llm-bench scores a model on the synthetic benchmark suite (the
// repository's stand-in for BIG-bench, §4 of the paper) at several few-shot
// settings and prints a leaderboard. It either loads a checkpoint or trains
// a fresh tiny model on the synthetic corpus.
//
// With -json it instead runs the inference performance benchmarks — the
// chunked-prefill fast path against token-by-token prompt ingestion,
// steady-state decode, and the E21 batched-decode scaling sweep (tokens/s
// of the cross-sequence GEMM step at each -decode-batch size) — on the E18
// serving shape, and writes the results as machine-readable JSON
// (BENCH_prefill.json, BENCH_decode.json, and BENCH_decode_batch.json in
// -out), so the performance trajectory across commits can be tracked by
// tooling rather than read out of benchmark logs.
//
// With -speculate it runs the end-to-end speculative-decoding sweep (E22):
// a model trained on PCFG text at the E17 serving shape, an n-gram draft
// model distilled from it, greedy tokens/s of plain decoding versus
// speculative decoding at each -speculate-k draft depth (checking bitwise
// parity on every run), with per-depth acceptance-length histograms —
// written to BENCH_speculate.json in -out.
//
// With -load it runs the end-to-end HTTP serving-tier load benchmark (E23):
// either self-hosting a complete in-process tier — llm-serve worker stacks
// on real loopback listeners, with and without an llm-router in front — or
// driving an already-running deployment via -target. Closed-loop (fixed
// concurrency) and open-loop (fixed arrival rate) phases measure aggregate
// tokens/s, time-to-first-token p50/p99, and error/shed counts, written to
// BENCH_serve_load.json.
//
// With -chaos it runs the fault-injection chaos harness (E24): the same
// self-hosted worker+router fleet, driven twice with a seeded request set —
// once fault-free, once under an armed failpoint plan injecting sampler
// panics, a whole-batch step fault, prefill/verify errors, relay faults,
// dropped connections, and starved deadlines — asserting the serving
// stack's failure invariants: zero lost requests, workers survive injected
// panics, surviving requests bitwise identical to the fault-free run, and
// bounded post-ejection recovery. Results go to BENCH_chaos.json.
//
// With -chaos -churn it runs the membership-churn chaos harness instead
// (E25): a router that starts with an empty fleet, workers that join via
// lease-based registration, and a seeded schedule of worker kills,
// restarts, cold joins, and graceful leaves mid-run — under failpoints on
// the register/heartbeat control plane — asserting zero lost requests,
// bitwise-intact survivors, minimal session remap across membership
// epochs, and bounded rejoin-to-traffic time. Results go to
// BENCH_chaos_churn.json.
//
// With -chaos -router-ha it runs the router-high-availability harness
// (E26): two peered llm-routers replicating lease-based membership over
// one worker fleet, a failover client, and a seeded schedule that kills
// one router mid-load, restarts it on the same address, joins a worker at
// only one router (the other must learn it by gossip), and partitions the
// peer-sync channel — asserting zero lost requests, bitwise-intact
// survivors, bounded router recovery-to-traffic, and identical membership
// ledgers once the tier reconverges. Results go to
// BENCH_chaos_router_ha.json.
//
// Usage:
//
//	llm-bench [-model model.json] [-shots 0,3] [-seed 1]
//	llm-bench -json [-out .] [-prompt-tokens 256] [-reps 30]
//	          [-decode-batch 1,2,4,8,16,32]
//	llm-bench -speculate [-out .] [-reps 30] [-speculate-k 2,4,8]
//	llm-bench -load [-out .] [-target http://host:8371] [-load-workers 2]
//	          [-conns 8] [-requests 60] [-rate 100] [-load-tokens 16]
//	llm-bench -chaos [-out .] [-seed 1] [-load-workers 2]
//	          [-conns 8] [-requests 60] [-load-tokens 16]
//	llm-bench -chaos -churn [-out .] [-seed 1]
//	          [-conns 8] [-requests 60] [-load-tokens 16]
//	llm-bench -chaos -router-ha [-out .] [-seed 1]
//	          [-conns 8] [-requests 60] [-load-tokens 16]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/transformer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llm-bench: ")
	var (
		modelPath = flag.String("model", "", "checkpoint path; empty = train a fresh tiny model")
		shotsFlag = flag.String("shots", "0,3", "comma-separated shot counts")
		seed      = flag.Uint64("seed", 1, "random seed")
		jsonMode  = flag.Bool("json", false, "run the inference perf benchmarks and write BENCH_*.json instead of the eval leaderboard")
		outDir    = flag.String("out", ".", "directory for the -json result files")
		promptLen = flag.Int("prompt-tokens", 256, "prompt length for the -json prefill benchmark")
		reps      = flag.Int("reps", 30, "repetitions per -json measurement")
		decBatch  = flag.String("decode-batch", "1,2,4,8,16,32", "comma-separated batch sizes for the -json batched-decode scaling sweep")
		speculate = flag.Bool("speculate", false, "run the speculative-decoding sweep and write BENCH_speculate.json")
		specK     = flag.String("speculate-k", "2,4,8", "comma-separated draft depths for the -speculate sweep")
		loadMode  = flag.Bool("load", false, "run the HTTP serving-tier load benchmark and write BENCH_serve_load.json")
		chaosMode = flag.Bool("chaos", false, "run the fault-injection chaos harness and write BENCH_chaos.json")
		churnMode = flag.Bool("churn", false, "with -chaos: run the membership-churn harness and write BENCH_chaos_churn.json")
		haMode    = flag.Bool("router-ha", false, "with -chaos: run the router-high-availability harness and write BENCH_chaos_router_ha.json")
		target    = flag.String("target", "", "-load: base URL of a running router or worker; empty = self-host an in-process tier")
		workers   = flag.Int("load-workers", 2, "-load/-chaos: worker count behind the self-hosted router scenario")
		conns     = flag.Int("conns", 8, "-load/-chaos: client concurrency")
		requests  = flag.Int("requests", 60, "-load/-chaos: requests per scenario / arrivals per open-loop run")
		rate      = flag.Float64("rate", 100, "-load: open-loop arrival rate in req/s (0 disables the open-loop phase)")
		loadTok   = flag.Int("load-tokens", 16, "-load/-chaos: tokens generated per request")
	)
	flag.Parse()

	if *chaosMode {
		o := chaosOpts{
			workers: *workers, conns: *conns,
			requests: *requests, tokens: *loadTok, seed: *seed,
		}
		var err error
		switch {
		case *haMode:
			err = runRouterHAJSON(*outDir, o)
		case *churnMode:
			err = runChurnJSON(*outDir, o)
		default:
			err = runChaosJSON(*outDir, o)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	if *loadMode {
		err := runLoadJSON(*outDir, loadOpts{
			target: *target, workers: *workers, conns: *conns,
			requests: *requests, rate: *rate, tokens: *loadTok, seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	if *speculate {
		ks, err := parseInts(*specK)
		if err != nil {
			log.Fatalf("bad -speculate-k: %v", err)
		}
		if err := runSpeculateJSON(*outDir, *reps, *seed, ks); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *jsonMode {
		batches, err := parseInts(*decBatch)
		if err != nil {
			log.Fatalf("bad -decode-batch: %v", err)
		}
		if err := runPerfJSON(*outDir, *promptLen, *reps, *seed, batches); err != nil {
			log.Fatal(err)
		}
		return
	}

	var model *core.LLM
	name := "fresh-tiny"
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = core.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name = *modelPath
	} else {
		lines := corpus.PCFGText(grammar.TinyEnglish(), 400, 10, mathx.NewRNG(*seed))
		var err error
		model, _, err = core.Train(lines, core.Config{
			Tokenizer: core.WordTok,
			Model: transformer.Config{
				Dim: 32, Layers: 2, Heads: 2, Window: 16,
				Pos: transformer.PosLearned, Act: nn.GELU,
			},
			Steps: 300, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Println("trained a fresh tiny model on the synthetic corpus")
	}

	shots, err := parseInts(*shotsFlag)
	if err != nil {
		log.Fatalf("bad -shots: %v", err)
	}

	var lb eval.Leaderboard
	for _, task := range eval.Suite(mathx.NewRNG(*seed + 1)) {
		for _, sh := range shots {
			acc := eval.ScoreTask(model, task, eval.PromptConfig{Shots: sh}, mathx.NewRNG(*seed+2))
			lb.Add(name, task.Name, sh, acc)
		}
	}
	fmt.Print(lb.Format())
}

// perfResult is one benchmark's machine-readable record. Fields are stable:
// downstream tooling diffs them across commits. Hists carries acceptance-
// length histograms for the -speculate sweep (bucket i = rounds accepting
// exactly i draft tokens).
type perfResult struct {
	Bench        string              `json:"bench"`
	Shape        map[string]int      `json:"shape"`
	PromptTokens int                 `json:"prompt_tokens,omitempty"`
	Reps         int                 `json:"reps"`
	Metrics      map[string]float64  `json:"metrics"`
	Hists        map[string][]uint64 `json:"hists,omitempty"`
	UnixTime     int64               `json:"unix_time"`
}

// parseInts splits a comma-separated list of positive integers.
func parseInts(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("%d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// runPerfJSON measures prefill (chunked Extend vs token-by-token Append),
// steady-state decode, and batched-decode scaling (tokens/s per batch size,
// E21) on the E18 serving shape with randomly initialized weights (timing
// is weight-value independent), writing BENCH_prefill.json,
// BENCH_decode.json, and BENCH_decode_batch.json into dir.
func runPerfJSON(dir string, promptLen, reps int, seed uint64, batches []int) error {
	if promptLen < 1 {
		return fmt.Errorf("-prompt-tokens %d must be positive", promptLen)
	}
	if reps < 1 {
		return fmt.Errorf("-reps %d must be positive", reps)
	}
	if len(batches) == 0 {
		return fmt.Errorf("-decode-batch must name at least one batch size")
	}
	cfg := transformer.Config{
		Vocab: 33, Dim: 32, Layers: 2, Heads: 2, Window: promptLen + 32,
		Pos: transformer.PosLearned, Act: nn.GELU,
	}
	m := transformer.MustNew(cfg, mathx.NewRNG(seed))
	rng := mathx.NewRNG(seed + 1)
	prompt := make([]int, promptLen)
	for i := range prompt {
		prompt[i] = rng.Intn(cfg.Vocab)
	}
	shape := map[string]int{
		"vocab": cfg.Vocab, "dim": cfg.Dim, "layers": cfg.Layers,
		"heads": cfg.Heads, "window": cfg.Window,
	}

	m.NewPredictor().Extend(prompt) // compile + warm outside the timers
	extend := minDuration(reps, func() time.Duration {
		p := m.NewPredictor()
		start := time.Now()
		p.Extend(prompt)
		return time.Since(start)
	})
	appendT := minDuration(reps, func() time.Duration {
		p := m.NewPredictor()
		start := time.Now()
		for _, id := range prompt {
			p.Append(id)
		}
		return time.Since(start)
	})
	prefill := perfResult{
		Bench: "prefill", Shape: shape, PromptTokens: promptLen, Reps: reps,
		Metrics: map[string]float64{
			"extend_ns":      float64(extend.Nanoseconds()),
			"append_ns":      float64(appendT.Nanoseconds()),
			"extend_tok_s":   tokPerSec(promptLen, extend),
			"append_tok_s":   tokPerSec(promptLen, appendT),
			"extend_speedup": float64(appendT) / float64(extend),
		},
		UnixTime: time.Now().Unix(),
	}

	// Steady-state decode: greedy continuation after a short seed prompt,
	// on its own fixed shape (window sized so the timed loop never re-arms
	// a predictor and the metric is independent of -prompt-tokens).
	const decodeTokens = 256
	const decodeSeed = 16
	dcfg := cfg
	dcfg.Window = decodeSeed + decodeTokens
	dm := transformer.MustNew(dcfg, mathx.NewRNG(seed))
	dshape := map[string]int{
		"vocab": dcfg.Vocab, "dim": dcfg.Dim, "layers": dcfg.Layers,
		"heads": dcfg.Heads, "window": dcfg.Window,
	}
	seedPrompt := make([]int, decodeSeed)
	for i := range seedPrompt {
		seedPrompt[i] = rng.Intn(dcfg.Vocab)
	}
	dm.NewPredictor().Extend(seedPrompt) // compile + warm outside the timer
	decode := minDuration(reps, func() time.Duration {
		p := dm.NewPredictor()
		logits := p.Extend(seedPrompt)
		start := time.Now()
		for j := 0; j < decodeTokens; j++ {
			next, _ := mathx.ArgMax(logits)
			logits = p.Append(next)
		}
		return time.Since(start)
	})
	decodeRes := perfResult{
		Bench: "decode", Shape: dshape, Reps: reps,
		Metrics: map[string]float64{
			"decode_ns":    float64(decode.Nanoseconds()),
			"decode_tok_s": tokPerSec(decodeTokens, decode),
		},
		UnixTime: time.Now().Unix(),
	}

	// Batched-decode scaling (E21): tokens/s of the cross-sequence GEMM
	// step at each requested batch size, same decode shape. Per-step weight
	// traffic is constant in the batch size, so tokens/s growing with the
	// batch (and step latency growing sublinearly) is the signature being
	// tracked across commits.
	batchMetrics := map[string]float64{}
	for _, batch := range batches {
		// One predictor per batch size, reused across reps, so the warm
		// run really does grow the step arena the timed reps then reuse
		// (sequences re-arm per rep outside the clock).
		bp := dm.NewBatchedPredictor()
		var ids []int
		last := make([]int, batch)
		runBatch := func() time.Duration {
			for _, id := range ids {
				bp.Drop(id)
			}
			ids = ids[:0]
			for i := 0; i < batch; i++ {
				id := bp.Add()
				ids = append(ids, id)
				next, _ := mathx.ArgMax(bp.Prefill(id, seedPrompt))
				last[i] = next
			}
			start := time.Now()
			for j := 0; j < decodeTokens; j++ {
				for i, row := range bp.Step(ids, last) {
					last[i], _ = mathx.ArgMax(row)
				}
			}
			return time.Since(start)
		}
		runBatch() // warm the step arena outside the timers
		d := minDuration(reps, runBatch)
		batchMetrics[fmt.Sprintf("batch%d_tok_s", batch)] = tokPerSec(batch*decodeTokens, d)
		batchMetrics[fmt.Sprintf("batch%d_step_ns", batch)] = float64(d.Nanoseconds()) / decodeTokens
	}
	batchRes := perfResult{
		Bench: "decode_batch", Shape: dshape, Reps: reps,
		Metrics: batchMetrics, UnixTime: time.Now().Unix(),
	}

	if err := writeBench(filepath.Join(dir, "BENCH_prefill.json"), prefill); err != nil {
		return err
	}
	if err := writeBench(filepath.Join(dir, "BENCH_decode.json"), decodeRes); err != nil {
		return err
	}
	if err := writeBench(filepath.Join(dir, "BENCH_decode_batch.json"), batchRes); err != nil {
		return err
	}
	fmt.Printf("prefill %d tokens: extend %.2fms (%.0f tok/s), append %.2fms (%.0f tok/s), speedup %.2fx\n",
		promptLen, ms(extend), prefill.Metrics["extend_tok_s"],
		ms(appendT), prefill.Metrics["append_tok_s"], prefill.Metrics["extend_speedup"])
	fmt.Printf("decode %d tokens: %.2fms (%.0f tok/s)\n",
		decodeTokens, ms(decode), decodeRes.Metrics["decode_tok_s"])
	for _, batch := range batches {
		fmt.Printf("decode batch %d: %.0f tok/s (%.1fµs/step)\n", batch,
			batchMetrics[fmt.Sprintf("batch%d_tok_s", batch)],
			batchMetrics[fmt.Sprintf("batch%d_step_ns", batch)]/1000)
	}
	return nil
}

// runSpeculateJSON measures end-to-end greedy generation throughput with
// and without speculative decoding (E22): a transformer trained on
// low-entropy chronicle PCFG text at the E17 serving shape (Dim 64,
// 2 layers, 4 heads, window 64), an order-3 n-gram draft model distilled
// from the trained model itself, and one sweep entry per draft depth in
// ks. The formulaic corpus puts decoding in the regime speculation is for:
// mostly-deterministic spans the drafter predicts, so whole blocks verify
// in one pass. Every speculative run is checked
// bitwise against the plain greedy output — the sweep measures a fast path,
// never a different decode. Results (tokens/s, speedup, acceptance rates,
// and per-depth acceptance-length histograms) go to BENCH_speculate.json.
func runSpeculateJSON(dir string, reps int, seed uint64, ks []int) error {
	if reps < 1 {
		return fmt.Errorf("-reps %d must be positive", reps)
	}
	if len(ks) == 0 {
		return fmt.Errorf("-speculate-k must name at least one draft depth")
	}
	lines := corpus.PCFGText(grammar.Chronicle(), 400, 12, mathx.NewRNG(seed))
	log.Printf("training the E17-shape model on %d PCFG sentences", len(lines))
	model, _, err := core.Train(lines, core.Config{
		Tokenizer: core.WordTok,
		Model: transformer.Config{
			Dim: 64, Layers: 2, Heads: 4, Window: 64,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 200, BatchSize: 4, Seed: seed,
	})
	if err != nil {
		return err
	}
	log.Print("distilling the n-gram draft model")
	drafter := lm.DistillDrafter(model, 3, 4096, seed)

	const prompt = "the royal king"
	const genTokens = 56 // prompt + budget fills most of the 64-token window
	shape := map[string]int{
		"vocab": model.Tok.VocabSize(), "dim": 64, "layers": 2,
		"heads": 4, "window": 64, "gen_tokens": genTokens,
	}
	opts := []sample.Option{sample.WithMaxTokens(genTokens), sample.WithSeed(1)}

	gen := func(extra ...sample.Option) (lm.Result, error) {
		return lm.Gen(model, prompt, append(append([]sample.Option(nil), opts...), extra...)...)
	}
	plainRes, err := gen()
	if err != nil {
		return err
	}
	plain := minDuration(reps, func() time.Duration {
		start := time.Now()
		if _, err := gen(); err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	})

	metrics := map[string]float64{
		"plain_tok_s": tokPerSec(genTokens, plain),
		"plain_ns":    float64(plain.Nanoseconds()),
	}
	hists := map[string][]uint64{}
	type row struct {
		k       int
		tokS    float64
		speedup float64
		accept  float64
	}
	var rows []row
	for _, k := range ks {
		sp := &sample.Speculative{K: k, Drafter: drafter}
		spOpt := sample.WithSpeculative(sp)
		d := minDuration(reps, func() time.Duration {
			start := time.Now()
			res, err := gen(spOpt)
			elapsed := time.Since(start)
			if err != nil {
				log.Fatal(err)
			}
			if res.Text != plainRes.Text {
				log.Fatalf("k=%d: speculative output %q != plain %q", k, res.Text, plainRes.Text)
			}
			return elapsed
		})
		accept := 0.0
		if sp.Stats.Drafted > 0 {
			accept = float64(sp.Stats.Accepted) / float64(sp.Stats.Drafted)
		}
		pre := fmt.Sprintf("k%d_", k)
		metrics[pre+"tok_s"] = tokPerSec(genTokens, d)
		metrics[pre+"ns"] = float64(d.Nanoseconds())
		metrics[pre+"speedup"] = float64(plain) / float64(d)
		metrics[pre+"accept_rate"] = accept
		metrics[pre+"rounds"] = float64(sp.Stats.Rounds)
		hists[pre+"accept_hist"] = append([]uint64(nil), sp.Stats.AcceptHist[:]...)
		rows = append(rows, row{k, metrics[pre+"tok_s"], metrics[pre+"speedup"], accept})
	}

	res := perfResult{
		Bench: "speculate", Shape: shape, Reps: reps,
		Metrics: metrics, Hists: hists, UnixTime: time.Now().Unix(),
	}
	if err := writeBench(filepath.Join(dir, "BENCH_speculate.json"), res); err != nil {
		return err
	}
	fmt.Printf("plain greedy: %.2fms (%.0f tok/s)\n", ms(plain), metrics["plain_tok_s"])
	for _, r := range rows {
		fmt.Printf("speculate k=%d: %.0f tok/s, %.2fx, %.0f%% drafts accepted\n",
			r.k, r.tokS, r.speedup, 100*r.accept)
	}
	return nil
}

// minDuration reports the fastest of reps runs — the standard noise-robust
// point estimate for micro-measurements. f times its own measured section
// and returns the duration, so per-rep setup (predictor construction, seed
// prefill) stays outside the clock.
func minDuration(reps int, f func() time.Duration) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		if d := f(); i == 0 || d < best {
			best = d
		}
	}
	return best
}

func tokPerSec(tokens int, d time.Duration) float64 {
	return float64(tokens) / d.Seconds()
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// writeBench writes the result atomically: marshal to a temp file in the
// target directory, then rename over the destination. A crash or a
// concurrent reader (CI artifact collection, result-diffing tooling) never
// observes a truncated or half-written BENCH_*.json.
func writeBench(path string, v perfResult) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
