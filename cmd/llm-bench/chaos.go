package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/failpoint"
	"repro/internal/grammar"
	"repro/internal/httpapi"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/transformer"
)

// chaosOpts carries the -chaos flags.
type chaosOpts struct {
	workers  int    // worker processes behind the router
	conns    int    // concurrent clients
	requests int    // requests per phase
	tokens   int    // tokens generated per request
	seed     uint64 // plan seed + model/training seed
}

// chaosOutcome classifies one request's terminal outcome as the client saw
// it. Every request must land in exactly one bucket — the "no lost
// requests" invariant is that the buckets sum to the request count and the
// workers' own terminal counters reconcile after the fleet drains.
type chaosOutcome int

const (
	chaosOK      chaosOutcome = iota // 200 with a completion
	chaosFailed                      // an HTTP error status (500, 502, 504, ...)
	chaosSevered                     // transport error: a dropped connection
)

// runChaosJSON is the fault-injection chaos harness behind llm-bench -chaos
// (E24). It self-hosts the full serving tier in one process — llm-serve
// worker stacks with the continuous-batching loop on a real transformer,
// real loopback listeners, an llm-router in front — then drives the same
// seeded request set twice: once fault-free to record reference outputs,
// once under an armed failpoint plan spanning every serving layer (sampler
// panics, a whole-batch step fault, prefill and verify errors, relay faults,
// dropped connections, starved deadlines). It asserts the stack's failure
// invariants rather than a golden fault log, because concurrency reorders
// which request absorbs which fault:
//
//  1. zero lost requests — every client call reaches exactly one terminal
//     outcome, and after the fleet drains each worker's counters reconcile
//     (requests == completed+cancelled+failed, nothing in flight);
//  2. the worker process survives injected panics — panics fired, were
//     charged to their victims, and a fresh request succeeds on every
//     worker afterwards;
//  3. blast-radius containment — every request that still succeeded under
//     chaos returns output bitwise identical to the fault-free run;
//  4. bounded recovery — probe faults eject the whole fleet, and the next
//     clean probe round readmits it within the recovery bound.
//
// Results (outcome tallies, per-site fire counts, recovery time, disarmed
// per-site overhead) go to BENCH_chaos.json.
func runChaosJSON(dir string, o chaosOpts) error {
	if o.workers < 1 || o.conns < 1 || o.requests < 1 || o.tokens < 1 {
		return fmt.Errorf("-load-workers, -conns, -requests and -load-tokens must be positive")
	}
	failpoint.Disarm() // the baseline phase must be fault-free
	const recoveryBound = 10 * time.Second

	log.Print("training the chaos-fleet transformer")
	lines := corpus.PCFGText(grammar.TinyEnglish(), 200, 8, mathx.NewRNG(o.seed))
	model, _, err := core.Train(lines, core.Config{
		Tokenizer: core.WordTok,
		Model: transformer.Config{
			Dim: 16, Layers: 1, Heads: 2, Window: o.tokens + 16,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 30, Seed: o.seed,
	})
	if err != nil {
		return err
	}
	drafter := lm.DistillDrafter(model, 3, 512, o.seed)

	// The fleet: workers on the batched transformer path with chunked
	// prefill and speculation enabled, so every serve-loop failpoint site
	// (prefill, step, verify, sample) sees traffic; a router with fast
	// probes in front.
	type chaosWorker struct {
		srv  *serve.Server
		base string
		stop func()
	}
	fleet := make([]chaosWorker, o.workers)
	urls := make([]string, o.workers)
	for i := range fleet {
		srv := serve.New(model, serve.Config{
			MaxBatch: 4, CoalesceWait: time.Millisecond, PrefillChunk: 4,
			Speculate: 2, Drafter: drafter,
		})
		base, stopHTTP, err := listenAndServe(httpapi.New(srv, nil))
		if err != nil {
			srv.Close()
			for _, w := range fleet[:i] {
				w.stop()
			}
			return err
		}
		fleet[i] = chaosWorker{srv: srv, base: base, stop: func() { stopHTTP(); srv.Close() }}
		urls[i] = base
	}
	defer func() {
		for _, w := range fleet {
			w.stop()
		}
	}()
	rt, err := router.New(router.Config{
		Backends: urls, MaxAttempts: 3, RetryBackoff: 5 * time.Millisecond,
		HealthInterval: 20 * time.Millisecond, FailThreshold: 2,
		RelayTimeout: 5 * time.Second,
	}, nil)
	if err != nil {
		return err
	}
	defer rt.Close()
	front, stopFront, err := listenAndServe(rt)
	if err != nil {
		return err
	}
	defer stopFront()
	client := &http.Client{
		Timeout:   30 * time.Second, // no request may hang the harness
		Transport: &http.Transport{MaxIdleConnsPerHost: o.conns + 4},
	}

	// Phase 1 — fault-free reference run: the disarmed outputs later 200s
	// must match bitwise.
	log.Printf("phase 1: fault-free reference run (%d requests)", o.requests)
	baseline := driveChaos(client, front, o, false)
	for i, r := range baseline {
		if r.outcome != chaosOK {
			return fmt.Errorf("fault-free request %d failed (status %d): the baseline must be clean", i, r.status)
		}
	}
	waitFleetIdle := func() error {
		deadline := time.Now().Add(recoveryBound)
		for _, w := range fleet {
			for {
				st := w.srv.Stats()
				if st.InFlight == 0 && st.Queued == 0 &&
					st.Requests == st.Completed+st.Cancelled+st.Failed {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("lost requests: worker %s never reconciled: %+v", w.base, st)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		return nil
	}
	if err := waitFleetIdle(); err != nil {
		return err
	}

	// Phase 2 — the same request set under an armed plan touching every
	// layer. Probabilities are low enough that most requests survive (the
	// bitwise invariant needs survivors) and high enough that every kind
	// of fault fires at the pinned seed.
	log.Print("phase 2: chaos run under the armed fault plan")
	if err := failpoint.Arm(failpoint.Plan{Seed: o.seed, Rules: []failpoint.Rule{
		{Site: failpoint.ServeSample, Kind: failpoint.KindPanic, Prob: 0.02},
		{Site: failpoint.ServeStep, Kind: failpoint.KindError, After: 20, Count: 1},
		{Site: failpoint.ServePrefill, Kind: failpoint.KindError, Prob: 0.03},
		{Site: failpoint.ServeVerify, Kind: failpoint.KindError, Prob: 0.03},
		{Site: failpoint.HTTPGenerate, Kind: failpoint.KindDrop, Prob: 0.03},
		{Site: failpoint.RouterRelay, Kind: failpoint.KindError, Prob: 0.05},
	}}); err != nil {
		return err
	}
	chaos := driveChaos(client, front, o, true)
	fired := failpoint.Stats()
	failpoint.Disarm()
	if err := waitFleetIdle(); err != nil {
		return err
	}

	// Invariant 1: exactly one terminal outcome per request.
	var nOK, nFailed, nSevered, nMismatch int
	for i, r := range chaos {
		switch r.outcome {
		case chaosOK:
			nOK++
			if r.completion != baseline[i].completion {
				nMismatch++
				log.Printf("BITWISE MISMATCH request %d: %q != %q", i, r.completion, baseline[i].completion)
			}
		case chaosFailed:
			nFailed++
		case chaosSevered:
			nSevered++
		}
	}
	if nOK+nFailed+nSevered != o.requests {
		return fmt.Errorf("lost requests: %d ok + %d failed + %d severed != %d sent",
			nOK, nFailed, nSevered, o.requests)
	}
	// Invariant 3: survivors are bitwise intact.
	if nMismatch > 0 {
		return fmt.Errorf("%d surviving requests diverged from the fault-free run", nMismatch)
	}
	// Invariant 2: panics fired and every worker outlived them.
	var panics, failed uint64
	for _, w := range fleet {
		st := w.srv.Stats()
		panics += st.Panics
		failed += st.Failed
	}
	if panics == 0 {
		return fmt.Errorf("no sampler panic fired at seed %d; the chaos run proved nothing", o.seed)
	}
	for _, w := range fleet {
		status, _ := chaosGenerate(client, w.base, o.tokens, 1)
		if status != http.StatusOK {
			return fmt.Errorf("worker %s did not survive the chaos phase: fresh request got %d", w.base, status)
		}
	}

	// Phase 3 — recovery timing: enough consecutive probe faults to eject
	// every worker (FailThreshold 2, one fault per worker per 20ms probe
	// round), then measure how long the fleet takes to go all-healthy once
	// the faults run out.
	log.Print("phase 3: probe-fault ejection and recovery timing")
	allHealthy := func() bool {
		st := rt.Stats()
		for _, b := range st.Backends {
			if !b.Healthy {
				return false
			}
		}
		return true
	}
	anyEjected := func() bool {
		for _, b := range rt.Stats().Backends {
			if !b.Healthy {
				return true
			}
		}
		return false
	}
	if err := failpoint.Arm(failpoint.Plan{Seed: o.seed, Rules: []failpoint.Rule{
		{Site: failpoint.RouterProbe, Kind: failpoint.KindError, Count: 2 * o.workers},
	}}); err != nil {
		return err
	}
	ejectStart := time.Now()
	for !anyEjected() {
		if time.Since(ejectStart) > recoveryBound {
			failpoint.Disarm()
			return fmt.Errorf("probe faults never ejected a worker within %s", recoveryBound)
		}
		time.Sleep(time.Millisecond)
	}
	ejected := time.Since(ejectStart)
	recoverStart := time.Now()
	for !allHealthy() {
		if time.Since(recoverStart) > recoveryBound {
			failpoint.Disarm()
			return fmt.Errorf("fleet did not recover within %s of ejection", recoveryBound)
		}
		time.Sleep(time.Millisecond)
	}
	recovery := time.Since(recoverStart)
	failpoint.Disarm()
	if status, _ := chaosGenerate(client, front, o.tokens, 1); status != http.StatusOK {
		return fmt.Errorf("recovered fleet rejected a clean request: status %d", status)
	}

	// Disarmed overhead: the per-site cost every production request pays
	// for carrying the failpoints (also pinned by TestDisarmedInjectZeroAlloc
	// and BenchmarkDisarmedInject in internal/failpoint).
	const overheadReps = 1_000_000
	start := time.Now()
	for i := 0; i < overheadReps; i++ {
		_ = failpoint.Inject(failpoint.ServeStep)
	}
	disarmedNS := float64(time.Since(start).Nanoseconds()) / overheadReps

	metrics := map[string]float64{
		"baseline_ok":        float64(len(baseline)),
		"chaos_ok":           float64(nOK),
		"chaos_failed":       float64(nFailed),
		"chaos_severed":      float64(nSevered),
		"bitwise_mismatches": float64(nMismatch),
		"worker_panics":      float64(panics),
		"worker_failed":      float64(failed),
		"ejection_ms":        ms(ejected),
		"recovery_ms":        ms(recovery),
		"disarmed_inject_ns": disarmedNS,
	}
	var totalFired uint64
	for site, st := range fired {
		metrics["fired_"+strings.ReplaceAll(site, "/", "_")] = float64(st.Fired)
		totalFired += st.Fired
	}
	metrics["faults_fired"] = float64(totalFired)

	res := perfResult{
		Bench: "chaos",
		Shape: map[string]int{
			"workers": o.workers, "conns": o.conns,
			"requests": o.requests, "tokens": o.tokens,
		},
		Reps:     o.requests,
		Metrics:  metrics,
		UnixTime: time.Now().Unix(),
	}
	if err := writeBench(filepath.Join(dir, "BENCH_chaos.json"), res); err != nil {
		return err
	}
	fmt.Printf("chaos: %d requests → %d ok, %d failed, %d severed; %d faults fired, %d panics survived, 0 lost, 0 bitwise mismatches\n",
		o.requests, nOK, nFailed, nSevered, totalFired, panics)
	fmt.Printf("recovery: ejected in %.0fms, fleet healthy %.0fms after faults cleared; disarmed site cost %.1fns\n",
		ms(ejected), ms(recovery), disarmedNS)
	return nil
}

// chaosResult is one driven request's observation.
type chaosResult struct {
	outcome    chaosOutcome
	status     int
	completion string
}

// driveChaos issues the seeded request set — o.requests greedy generations,
// deterministic bodies keyed by index — through o.conns concurrent clients
// and records every terminal outcome by index. Under chaos every 8th
// request carries a 1ms deadline budget, exercising the 504 path without
// disturbing the other indices' bodies.
func driveChaos(client *http.Client, base string, o chaosOpts, armed bool) []chaosResult {
	results := make([]chaosResult, o.requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < o.conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.requests {
					return
				}
				req := httpapi.GenRequest{
					Prompt: "the king", Tokens: o.tokens, Seed: uint64(i + 1),
				}
				if i%3 == 0 {
					req.Session = fmt.Sprintf("sess-%d", i%7)
				}
				if armed && i%8 == 5 {
					req.TimeoutMS = 1
				}
				results[i] = postGenerate(client, base, req)
			}
		}()
	}
	wg.Wait()
	return results
}

// chaosGenerate issues one clean greedy generation and returns its status
// and completion.
func chaosGenerate(client *http.Client, base string, tokens int, seed uint64) (int, string) {
	r := postGenerate(client, base, httpapi.GenRequest{
		Prompt: "the king", Tokens: tokens, Seed: seed,
	})
	return r.status, r.completion
}

// postGenerate drives one POST /v1/generate and classifies its outcome.
func postGenerate(client *http.Client, base string, req httpapi.GenRequest) chaosResult {
	body, err := json.Marshal(req)
	if err != nil {
		return chaosResult{outcome: chaosFailed}
	}
	resp, err := client.Post(base+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		return chaosResult{outcome: chaosSevered}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return chaosResult{outcome: chaosFailed, status: resp.StatusCode}
	}
	var out httpapi.GenResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return chaosResult{outcome: chaosSevered, status: resp.StatusCode}
	}
	return chaosResult{outcome: chaosOK, status: resp.StatusCode, completion: out.Completion}
}
