package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/httpapi"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/router"
	"repro/internal/serve"
)

// loadOpts carries the -load flags.
type loadOpts struct {
	target   string  // base URL to drive; empty = self-host an in-process tier
	workers  int     // self-hosted worker count behind the router scenario
	conns    int     // closed-loop concurrency
	requests int     // requests per closed-loop scenario / arrivals per open-loop run
	rate     float64 // open-loop arrival rate in req/s (0 disables the open-loop phase)
	tokens   int     // tokens generated per request
	seed     uint64
}

// runLoadJSON is the end-to-end HTTP load benchmark behind llm-bench -load
// (E23). With no -target it self-hosts the whole replicated tier in one
// process — real TCP listeners, real llm-serve HTTP stacks, a real
// llm-router — and measures two scenarios: one worker driven directly, and
// a router fronting -load-workers workers. With -target it drives an
// already-running router or worker instead. Each scenario runs a
// closed-loop phase (-conns concurrent clients, -requests streams) and,
// when -rate > 0, an open-loop phase (-requests arrivals at a fixed rate,
// regardless of completions — the phase that exposes shedding). Results go
// to BENCH_serve_load.json: aggregate tokens/s, TTFT p50/p99, and
// error/shed counts per phase.
func runLoadJSON(dir string, o loadOpts) error {
	if o.workers < 1 || o.conns < 1 || o.requests < 1 || o.tokens < 1 {
		return fmt.Errorf("-load-workers, -conns, -requests and -load-tokens must be positive")
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.conns + 4}}
	metrics := map[string]float64{}
	var summaries []string

	runScenario := func(name, base string) error {
		closed := driveClosed(client, base, o)
		closed.record(metrics, name+"_closed")
		summaries = append(summaries, fmt.Sprintf("%s closed-loop: %s", name, closed))
		if closed.ok == 0 {
			return fmt.Errorf("%s: no request succeeded (%d errors, %d shed)", name, closed.errors, closed.shed)
		}
		if o.rate > 0 {
			open := driveOpen(client, base, o)
			open.record(metrics, name+"_open")
			metrics[name+"_open_rate_rps"] = o.rate
			summaries = append(summaries, fmt.Sprintf("%s open-loop @%.0f req/s: %s", name, o.rate, open))
		}
		return nil
	}

	if o.target != "" {
		if err := runScenario("target", strings.TrimSuffix(o.target, "/")); err != nil {
			return err
		}
	} else {
		// Self-hosted tier on the n-gram backend: trains in milliseconds and
		// keeps per-token model cost tiny, so the measurement stresses the
		// serving and routing layers (HTTP, SSE, batching queues, placement)
		// rather than matrix arithmetic.
		log.Print("training the n-gram backend for the self-hosted tier")
		model, err := lm.TrainBackend("ngram", corpus.PCFGText(grammar.TinyEnglish(), 400, 10, mathx.NewRNG(o.seed)), o.seed)
		if err != nil {
			return err
		}

		worker, stopWorker, err := startWorker(model)
		if err != nil {
			return err
		}
		err = runScenario("worker1", worker)
		stopWorker()
		if err != nil {
			return err
		}

		fleet := make([]string, o.workers)
		stops := make([]func(), 0, o.workers+1)
		for i := range fleet {
			base, stop, err := startWorker(model)
			if err != nil {
				for _, s := range stops {
					s()
				}
				return err
			}
			fleet[i] = base
			stops = append(stops, stop)
		}
		rt, err := router.New(router.Config{Backends: fleet}, nil)
		if err != nil {
			for _, s := range stops {
				s()
			}
			return err
		}
		front, stopFront, err := listenAndServe(rt)
		if err == nil {
			stops = append(stops, stopFront)
			err = runScenario(fmt.Sprintf("router%d", o.workers), front)
		}
		rt.Close()
		for _, s := range stops {
			s()
		}
		if err != nil {
			return err
		}
		if w1, rN := metrics["worker1_closed_tok_s"], metrics[fmt.Sprintf("router%d_closed_tok_s", o.workers)]; w1 > 0 {
			metrics["router_vs_worker1_speedup"] = rN / w1
		}
	}

	res := perfResult{
		Bench: "serve_load",
		Shape: map[string]int{
			"workers": o.workers, "conns": o.conns,
			"requests": o.requests, "tokens": o.tokens,
		},
		Reps:     o.requests,
		Metrics:  metrics,
		UnixTime: time.Now().Unix(),
	}
	if err := writeBench(filepath.Join(dir, "BENCH_serve_load.json"), res); err != nil {
		return err
	}
	for _, s := range summaries {
		fmt.Println(s)
	}
	if sp, ok := metrics["router_vs_worker1_speedup"]; ok {
		fmt.Printf("router%d vs worker1 aggregate throughput: %.2fx\n", o.workers, sp)
	}
	return nil
}

// startWorker boots one full llm-serve stack (batching server + HTTP
// surface) on a loopback listener and returns its base URL.
func startWorker(model lm.LanguageModel) (base string, stop func(), err error) {
	srv := serve.NewBackend(model, serve.Config{})
	base, stopHTTP, err := listenAndServe(httpapi.New(srv, nil))
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	return base, func() { stopHTTP(); srv.Close() }, nil
}

// listenAndServe serves h on an OS-assigned loopback port.
func listenAndServe(h http.Handler) (base string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// loadResult aggregates one phase's outcomes.
type loadResult struct {
	ok, shed, errors int
	tokens           int64
	ttfts            []time.Duration // successful requests only
	wall             time.Duration
}

func (r loadResult) String() string {
	return fmt.Sprintf("%d ok, %d shed, %d errors, %.0f tok/s, TTFT p50 %.2fms p99 %.2fms",
		r.ok, r.shed, r.errors, float64(r.tokens)/r.wall.Seconds(),
		ms(percentile(r.ttfts, 50)), ms(percentile(r.ttfts, 99)))
}

// record flattens the phase into prefixed metrics.
func (r loadResult) record(metrics map[string]float64, prefix string) {
	metrics[prefix+"_ok"] = float64(r.ok)
	metrics[prefix+"_shed"] = float64(r.shed)
	metrics[prefix+"_errors"] = float64(r.errors)
	metrics[prefix+"_tok_s"] = float64(r.tokens) / r.wall.Seconds()
	metrics[prefix+"_ttft_p50_ms"] = ms(percentile(r.ttfts, 50))
	metrics[prefix+"_ttft_p99_ms"] = ms(percentile(r.ttfts, 99))
	metrics[prefix+"_wall_ms"] = ms(r.wall)
}

// driveClosed runs the closed-loop phase: conns clients issue streams
// back-to-back until o.requests have been sent. Concurrency, not arrival
// rate, is the controlled variable — the classic saturation measurement.
func driveClosed(client *http.Client, base string, o loadOpts) loadResult {
	var (
		next    atomic.Int64
		mu      sync.Mutex
		res     loadResult
		wg      sync.WaitGroup
		started = time.Now()
	)
	for c := 0; c < o.conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.requests {
					return
				}
				out := streamOnce(client, base, o, i)
				mu.Lock()
				res.add(out)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.wall = time.Since(started)
	return res
}

// driveOpen runs the open-loop phase: o.requests arrivals at a fixed
// o.rate, launched on schedule whether or not earlier requests finished —
// so queue growth, shedding, and tail latency show up instead of the
// generator politely slowing down.
func driveOpen(client *http.Client, base string, o loadOpts) loadResult {
	var (
		mu      sync.Mutex
		res     loadResult
		wg      sync.WaitGroup
		started = time.Now()
	)
	interval := time.Duration(float64(time.Second) / o.rate)
	for i := 0; i < o.requests; i++ {
		time.Sleep(time.Until(started.Add(time.Duration(i) * interval)))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := streamOnce(client, base, o, i)
			mu.Lock()
			res.add(out)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	res.wall = time.Since(started)
	return res
}

func (r *loadResult) add(out reqOutcome) {
	switch out.status {
	case statusOK:
		r.ok++
		r.tokens += int64(out.tokens)
		r.ttfts = append(r.ttfts, out.ttft)
	case statusShed:
		r.shed++
	default:
		r.errors++
	}
}

type reqStatus int

const (
	statusOK reqStatus = iota
	statusShed
	statusError
)

type reqOutcome struct {
	status reqStatus
	tokens int
	ttft   time.Duration
}

// streamOnce issues one /v1/stream request and consumes it. Half the
// requests carry a session key (exercising consistent-hash placement), half
// are unkeyed (least-loaded placement). TTFT is the time to the first SSE
// data frame.
func streamOnce(client *http.Client, base string, o loadOpts, i int) reqOutcome {
	body := fmt.Sprintf(`{"prompt":"the king","tokens":%d,"seed":%d`, o.tokens, i+1)
	if i%2 == 0 {
		body += fmt.Sprintf(`,"session":"sess-%d"`, i%16)
	}
	body += "}"
	start := time.Now()
	resp, err := client.Post(base+"/v1/stream", "application/json", strings.NewReader(body))
	if err != nil {
		return reqOutcome{status: statusError}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return reqOutcome{status: statusShed}
	default:
		return reqOutcome{status: statusError}
	}
	out := reqOutcome{status: statusError} // until the done frame arrives
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		payload, okPrefix := strings.CutPrefix(strings.TrimSpace(sc.Text()), "data: ")
		if !okPrefix {
			continue
		}
		if out.ttft == 0 {
			out.ttft = time.Since(start)
		}
		switch {
		case strings.Contains(payload, `"done":true`):
			out.status = statusOK
			return out
		case strings.Contains(payload, `"error"`):
			return out
		default:
			out.tokens++
		}
	}
	return out
}

// percentile returns the p-th percentile of ds (nearest-rank); 0 when empty.
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := (len(sorted)*p+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}
