package llm

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles turns on the pprof instrumentation shared by this
// repository's command-line tools: when cpuPath is non-empty, CPU sampling
// starts immediately; when memPath is non-empty, a heap profile is written
// when the returned stop function runs. Either path may be empty. Callers
// must invoke stop (typically via defer) before exiting so the CPU profile
// is flushed and the heap snapshot taken.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("llm: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("llm: cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "llm: mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // snapshot live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "llm: mem profile: %v\n", err)
			}
		}
	}, nil
}
