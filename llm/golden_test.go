package llm_test

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/transformer"
	"repro/llm"
)

// goldenModel trains the pinned E18/E19-shape checkpoint once per binary;
// both golden tests decode from the identical weights.
var goldenModel = sync.OnceValues(func() (*llm.LLM, error) {
	lines := llm.SyntheticCorpus(120, 11)
	cfg := llm.Config{
		Tokenizer: llm.WordTok,
		Model: llm.ModelConfig{
			Dim: 32, Layers: 2, Heads: 2, Window: 32,
			Pos: transformer.PosLearned, Act: nn.GELU,
		},
		Steps: 30, BatchSize: 2, Seed: 7,
	}
	model, _, err := llm.Train(lines, cfg)
	return model, err
})

// goldenGreedy is the pinned greedy stream for ("the king", 12 tokens,
// seed 3) on the goldenModel checkpoint, recorded before the compiled
// decode fast path landed (PR 3).
var goldenGreedy = struct {
	text   string
	tokens []int
}{"the royal the old the royal the royal the", []int{2, 4, 28, 2, 4, 18, 4, 28, 2, 4, 28, 4}}

// TestGenerationBitwiseGolden pins the sampled token streams for a fixed
// (checkpoint, seed, options) tuple to values recorded before the compiled
// decode fast path landed (PR 3). Decode-path optimizations are layout and
// reuse changes only — any arithmetic drift anywhere in the tokenizer →
// transformer → sampler stack changes these streams and fails this test.
//
// The configuration is the E18/E19 serving shape; the expected tokens were
// produced by the pre-compile Predictor and sort-based TopK/TopP.
func TestGenerationBitwiseGolden(t *testing.T) {
	model, err := goldenModel()
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		name   string
		strat  llm.Strategy
		text   string
		tokens []int
	}{
		{"greedy", llm.Greedy(), "the royal the old the royal the royal the",
			[]int{2, 4, 28, 2, 4, 18, 4, 28, 2, 4, 28, 4}},
		{"temp", llm.Temperature(0.8), "young dog the wise garden the prince the",
			[]int{11, 12, 2, 4, 14, 24, 2, 4, 2, 5, 2, 4}},
		{"topk", llm.TopK(5, 0.8), "man rules the man man rules the the sees the",
			[]int{8, 27, 4, 8, 8, 27, 4, 2, 4, 22, 4, 2}},
		{"topp", llm.TopP(0.9, 0.8), "young princess the a royal the royal sees the man",
			[]int{11, 23, 2, 4, 2, 7, 28, 4, 28, 22, 4, 8}},
	}
	// The batched serving path must reproduce the same pinned streams at
	// every decode width the E21 scaling sweep makes claims for: the
	// cross-sequence GEMM step regroups the arithmetic (X4/X2/X1 row
	// fusion, shared weight streams) but may not change one bit of any
	// sequence's logits. Each width fires `width` concurrent requests
	// cycling through the pinned strategies at a server whose batch admits
	// them all.
	for _, width := range []int{1, 2, 7, 16, 33} {
		srv := llm.NewServer(model, llm.ServerConfig{MaxBatch: width})
		var wg sync.WaitGroup
		for j := 0; j < width; j++ {
			g := golden[j%len(golden)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := srv.Do(context.Background(), llm.NewGenRequest("the king",
					llm.WithMaxTokens(12), llm.WithStrategy(g.strat), llm.WithSeed(3)))
				if err != nil {
					t.Errorf("width %d %s: %v", width, g.name, err)
					return
				}
				if res.Text != g.text || !reflect.DeepEqual(res.Tokens, g.tokens) {
					t.Errorf("width %d %s: batched serving drifted:\n got %q %v\nwant %q %v",
						width, g.name, res.Text, res.Tokens, g.text, g.tokens)
				}
			}()
		}
		wg.Wait()
		srv.Close()
	}

	for _, g := range golden {
		opts := []llm.GenOption{
			llm.WithMaxTokens(12), llm.WithStrategy(g.strat), llm.WithSeed(3),
		}
		res, err := model.Gen("the king", opts...)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if res.Text != g.text || !reflect.DeepEqual(res.Tokens, g.tokens) {
			t.Errorf("%s: Gen drifted from the pre-fast-path output:\n got %q %v\nwant %q %v",
				g.name, res.Text, res.Tokens, g.text, g.tokens)
		}
		// Stream must deliver the same stream, piece-concatenated.
		var pieces []string
		sres, err := model.Stream(context.Background(), "the king", func(tok llm.Token) error {
			pieces = append(pieces, tok.Text)
			return nil
		}, opts...)
		if err != nil {
			t.Fatalf("%s stream: %v", g.name, err)
		}
		if sres.Text != g.text || strings.Join(pieces, "") != g.text {
			t.Errorf("%s: Stream drifted: result %q, pieces %q", g.name, sres.Text, strings.Join(pieces, ""))
		}
	}
}

// wrongDrafter is an adversarial proposal model: it deterministically
// proposes a token cycling through the vocabulary, so almost every draft is
// rejected and the speculative driver exercises its rewind/correction path
// on nearly every round.
type wrongDrafter struct {
	vocab int
	dist  []float64
}

func (d *wrongDrafter) NextDist(ctx []int) []float64 {
	if d.dist == nil {
		d.dist = make([]float64, d.vocab)
	}
	for i := range d.dist {
		d.dist[i] = 0
	}
	d.dist[(len(ctx)*5+1)%d.vocab] = 1
	return d.dist
}

// TestSpeculativeBitwiseGolden pins the speculative-decoding acceptance
// criterion against the recorded golden stream: greedy generation with
// speculation enabled must reproduce the exact pre-fast-path tokens for
// every draft depth, for a realistic distilled drafter and for an
// adversarial one that forces rejection-heavy rounds — through the direct
// driver and through the batched server.
func TestSpeculativeBitwiseGolden(t *testing.T) {
	model, err := goldenModel()
	if err != nil {
		t.Fatal(err)
	}
	drafters := map[string]func() llm.Drafter{
		"distilled":   func() llm.Drafter { return llm.DistillDrafter(model, 3, 400, 9) },
		"adversarial": func() llm.Drafter { return &wrongDrafter{vocab: model.Tok.VocabSize()} },
	}
	for dname, mk := range drafters {
		for _, k := range []int{2, 4, 8} {
			sp := &llm.Speculative{K: k, Drafter: mk()}
			res, err := model.Gen("the king",
				llm.WithMaxTokens(12), llm.WithSeed(3), llm.WithSpeculative(sp))
			if err != nil {
				t.Fatalf("%s k=%d: %v", dname, k, err)
			}
			if res.Text != goldenGreedy.text || !reflect.DeepEqual(res.Tokens, goldenGreedy.tokens) {
				t.Errorf("%s k=%d: speculative greedy drifted:\n got %q %v\nwant %q %v",
					dname, k, res.Text, res.Tokens, goldenGreedy.text, goldenGreedy.tokens)
			}
			if sp.Stats.Rounds == 0 {
				t.Errorf("%s k=%d: no speculative rounds ran", dname, k)
			}
			if dname == "adversarial" && sp.Stats.Accepted == sp.Stats.Drafted && sp.Stats.Drafted > 0 {
				t.Errorf("adversarial drafter was never rejected (%d/%d)",
					sp.Stats.Accepted, sp.Stats.Drafted)
			}

			srv := llm.NewServer(model, llm.ServerConfig{Speculate: k, Drafter: mk()})
			sres, err := srv.Do(context.Background(), llm.NewGenRequest("the king",
				llm.WithMaxTokens(12), llm.WithSeed(3)))
			srv.Close()
			if err != nil {
				t.Fatalf("%s k=%d served: %v", dname, k, err)
			}
			if sres.Text != goldenGreedy.text || !reflect.DeepEqual(sres.Tokens, goldenGreedy.tokens) {
				t.Errorf("%s k=%d: served speculative greedy drifted:\n got %q %v\nwant %q %v",
					dname, k, sres.Text, sres.Tokens, goldenGreedy.text, goldenGreedy.tokens)
			}
		}
	}
}
