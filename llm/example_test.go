package llm_test

import (
	"context"
	"fmt"

	"repro/llm"
)

// exampleConfig is a sub-second training configuration shared by the
// examples below.
func exampleConfig() llm.Config {
	cfg := llm.DefaultConfig()
	cfg.Model.Dim = 16
	cfg.Steps = 60
	return cfg
}

// Example is the quickstart: synthesize a corpus, train a small
// transformer, and sample a continuation.
func Example() {
	lines := llm.SyntheticCorpus(200, 42)
	model, curve, err := llm.Train(lines, exampleConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("trained:", curve.FinalLoss() > 0)
	toks, err := model.GenerateTokens("the king", 6, llm.Temperature(0.8), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("generated tokens:", len(toks))
	// Output:
	// trained: true
	// generated tokens: 6
}

// ExampleTrain_workers trains with the data-parallel engine: the minibatch
// of every optimizer step is sharded across worker goroutines, and the
// shard gradients are combined with a deterministic tree-sum, so a run is
// reproducible for a fixed (Seed, Workers) pair. Workers=1 (the default)
// is bit-identical to the classic sequential loop.
func ExampleTrain_workers() {
	lines := llm.SyntheticCorpus(200, 42)
	cfg := exampleConfig()
	cfg.Workers = 4
	_, curve, err := llm.Train(lines, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("trained in parallel:", curve.FinalLoss() > 0)
	// Output:
	// trained in parallel: true
}

// ExampleServer serves a trained model: concurrent Generate calls are
// coalesced into batched forward passes, and each result is identical to
// the corresponding direct LLM.Generate call.
func ExampleServer() {
	lines := llm.SyntheticCorpus(200, 42)
	model, _, err := llm.Train(lines, exampleConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	srv := llm.NewServer(model, llm.ServerConfig{MaxBatch: 4})
	defer srv.Close()

	served, err := srv.Generate(context.Background(), "the king", 5, llm.Greedy(), 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	direct, _ := model.Generate("the king", 5, llm.Greedy(), 0)
	fmt.Println("matches the direct call:", served == direct)
	// Output:
	// matches the direct call: true
}
