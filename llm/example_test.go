package llm_test

import (
	"context"
	"fmt"

	"repro/llm"
)

// exampleConfig is a sub-second training configuration shared by the
// examples below.
func exampleConfig() llm.Config {
	cfg := llm.DefaultConfig()
	cfg.Model.Dim = 16
	cfg.Steps = 60
	return cfg
}

// Example is the quickstart: synthesize a corpus, train a small
// transformer, and sample a continuation with the unified options API.
func Example() {
	lines := llm.SyntheticCorpus(200, 42)
	model, curve, err := llm.Train(lines, exampleConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("trained:", curve.FinalLoss() > 0)
	res, err := model.Gen("the king",
		llm.WithMaxTokens(6), llm.WithStrategy(llm.Temperature(0.8)), llm.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("generated tokens:", len(res.Tokens))
	// Output:
	// trained: true
	// generated tokens: 6
}

// ExampleLLM_Stream streams a generation token by token: every sampled
// token is delivered as an event whose text pieces concatenate to exactly
// the final text.
func ExampleLLM_Stream() {
	lines := llm.SyntheticCorpus(200, 42)
	model, _, err := llm.Train(lines, exampleConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	var streamed string
	res, err := model.Stream(context.Background(), "the king",
		func(t llm.Token) error {
			streamed += t.Text
			return nil
		},
		llm.WithMaxTokens(5))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("pieces equal final text:", streamed == res.Text)
	// Output:
	// pieces equal final text: true
}

// ExampleTrain_workers trains with the data-parallel engine: the minibatch
// of every optimizer step is sharded across worker goroutines, and the
// shard gradients are combined with a deterministic tree-sum, so a run is
// reproducible for a fixed (Seed, Workers) pair. Workers=1 (the default)
// is bit-identical to the classic sequential loop.
func ExampleTrain_workers() {
	lines := llm.SyntheticCorpus(200, 42)
	cfg := exampleConfig()
	cfg.Workers = 4
	_, curve, err := llm.Train(lines, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("trained in parallel:", curve.FinalLoss() > 0)
	// Output:
	// trained in parallel: true
}

// ExampleServer serves a trained model: concurrent requests are coalesced
// into batched forward passes, and each result is identical to the
// corresponding direct Gen call with the same options.
func ExampleServer() {
	lines := llm.SyntheticCorpus(200, 42)
	model, _, err := llm.Train(lines, exampleConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	srv := llm.NewServer(model, llm.ServerConfig{MaxBatch: 4})
	defer srv.Close()

	opts := []llm.GenOption{llm.WithMaxTokens(5), llm.WithSeed(0)}
	served, err := srv.Gen(context.Background(), "the king", opts...)
	if err != nil {
		fmt.Println(err)
		return
	}
	direct, _ := model.Gen("the king", opts...)
	fmt.Println("matches the direct call:", served.Text == direct.Text)
	// Output:
	// matches the direct call: true
}

// ExampleNewBackendServer serves a non-transformer rung of the §5 model
// ladder through the same Server API: the backend is trained behind the
// LanguageModel interface and served in single-sequence mode.
func ExampleNewBackendServer() {
	backend, err := llm.TrainBackend("ngram", llm.SyntheticCorpus(200, 42), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	srv := llm.NewBackendServer(backend, llm.ServerConfig{})
	defer srv.Close()

	res, err := srv.Gen(context.Background(), "the king", llm.WithMaxTokens(5), llm.WithSeed(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	direct, _ := llm.Gen(backend, "the king", llm.WithMaxTokens(5), llm.WithSeed(2))
	fmt.Println("served ngram matches direct:", res.Text == direct.Text)
	// Output:
	// served ngram matches direct: true
}
