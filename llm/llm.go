// Package llm is the public API of this repository — a pure-Go, stdlib-only
// reproduction of the systems described in "Large Language Models:
// Principles and Practice" (the LLM tutorial literature: statistical
// language models, the transformer recipe, scaling laws, in-context
// learning, and interpretability probes).
//
// The package re-exports the supported surface of the internal substrates:
//
//   - Pipeline: corpus → tokenizer → transformer → training → sampling
//     (internal/core), with data-parallel training via Config.Workers,
//   - Model configuration (internal/transformer) and sampling strategies
//     (internal/sample),
//   - Server, the request-batching generation service (internal/serve),
//   - The evaluation harness (internal/eval),
//   - Experiment entry points for the paper's tables and figures
//     (internal/scaling, internal/icl).
//
// Quickstart (see the Example functions for runnable versions):
//
//	lines := llm.SyntheticCorpus(500, 42)
//	model, _, err := llm.Train(lines, llm.DefaultConfig())
//	if err != nil { ... }
//	res, _ := model.Gen("the king",
//		llm.WithMaxTokens(8), llm.WithStrategy(llm.Temperature(0.8)), llm.WithSeed(1))
//
// Generation is one operation parameterized by functional options
// (WithMaxTokens, WithStrategy, WithSeed, WithStop), and every entry point
// accepts the same options: direct calls, streaming, the batched server,
// and any backend behind the LanguageModel interface. Streaming delivers
// per-token events whose pieces concatenate to the exact final text:
//
//	model.Stream(ctx, "the king", func(t llm.Token) error {
//		fmt.Print(t.Text)
//		return nil
//	}, llm.WithMaxTokens(8))
//
// To serve concurrent traffic, wrap the model in a Server: requests are
// coalesced into batched forward passes while preserving the exact output
// of the unbatched calls:
//
//	srv := llm.NewServer(model, llm.ServerConfig{})
//	defer srv.Close()
//	res, err := srv.Gen(ctx, "the king",
//		llm.WithMaxTokens(8), llm.WithStrategy(llm.Temperature(0.8)), llm.WithSeed(1))
package llm

import (
	"context"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/lm"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/scaling"
	"repro/internal/serve"
	"repro/internal/train"
	"repro/internal/transformer"
)

// LLM is a trained language model (tokenizer + transformer).
type LLM = core.LLM

// Config assembles pipeline hyperparameters.
type Config = core.Config

// ModelConfig is the transformer architecture configuration (§6 of the
// paper: dimension p, depth D, heads H, window L).
type ModelConfig = transformer.Config

// Tokenizer kinds.
const (
	WordTok = core.WordTok
	CharTok = core.CharTok
	BPETok  = core.BPETok
)

// Positional-embedding kinds.
const (
	PosSinusoidal = transformer.PosSinusoidal
	PosLearned    = transformer.PosLearned
	PosNone       = transformer.PosNone
)

// Activations.
const (
	ReLU = nn.ReLU
	GELU = nn.GELU
	Tanh = nn.Tanh
)

// DefaultConfig returns a laptop-scale pipeline configuration good for the
// examples: word tokenizer, 2-block pre-LN transformer.
func DefaultConfig() Config {
	return Config{
		Tokenizer: WordTok,
		Model: ModelConfig{
			Dim: 32, Layers: 2, Heads: 2, Window: 16,
			Pos: PosLearned, Act: GELU,
		},
		Steps: 400, BatchSize: 4, LR: 0.003, Seed: 7,
	}
}

// Train builds a tokenizer from lines and trains a transformer LM.
// The returned TrainingCurve records per-step loss.
func Train(lines []string, cfg Config) (*LLM, *TrainingCurve, error) {
	model, res, err := core.Train(lines, cfg)
	if err != nil {
		return nil, nil, err
	}
	return model, &TrainingCurve{res: res}, nil
}

// TrainingCurve exposes the recorded optimization trajectory.
type TrainingCurve struct {
	res *train.Result
}

// FinalLoss returns the last training loss.
func (c *TrainingCurve) FinalLoss() float64 { return c.res.FinalTrainLoss() }

// Losses returns the full per-step training-loss slice (one entry per
// optimizer step, in step order).
func (c *TrainingCurve) Losses() []float64 {
	out := make([]float64, len(c.res.Curve))
	for i, rec := range c.res.Curve {
		out[i] = rec.TrainLoss
	}
	return out
}

// Strategy selects how tokens are sampled (Eq. 8 of the paper and its
// truncated variants).
type Strategy = sample.Strategy

// Greedy returns argmax decoding (the β → ∞ limit of Eq. 8).
func Greedy() Strategy { return sample.Greedy{} }

// Temperature returns Boltzmann sampling at temperature t.
func Temperature(t float64) Strategy { return sample.Temperature{T: t} }

// TopK returns top-k sampling at temperature t.
func TopK(k int, t float64) Strategy { return sample.TopK{K: k, T: t} }

// TopP returns nucleus sampling with mass p at temperature t.
func TopP(p, t float64) Strategy { return sample.TopP{P: p, T: t} }

// ParseStrategy resolves a strategy name ("greedy", "temp", "topk", "topp")
// and its numeric knobs into a Strategy with conventional defaults — the
// shared parser of the CLIs and the HTTP front end.
func ParseStrategy(name string, temp, p float64, k int) (Strategy, error) {
	return sample.ParseStrategy(name, temp, p, k)
}

// ---- Unified generation options ----

// GenOption parameterizes one generation; build requests with the With*
// constructors. The same options drive LLM.Gen, LLM.Stream, Server.Gen,
// Server.Stream, and NewGenRequest.
type GenOption = sample.Option

// WithMaxTokens sets the generation budget.
func WithMaxTokens(n int) GenOption { return sample.WithMaxTokens(n) }

// WithStrategy sets the decoding strategy.
func WithStrategy(s Strategy) GenOption { return sample.WithStrategy(s) }

// WithSeed sets the per-request sampling seed.
func WithSeed(seed uint64) GenOption { return sample.WithSeed(seed) }

// WithStop stops decoding at the end-of-sequence separator and trims it.
func WithStop() GenOption { return sample.WithStop() }

// WithSpeculative enables speculative decoding on drivers whose backend
// supports block verification (the transformer pipeline): sp drafts blocks
// of tokens from a cheap proposal model and the target verifies each block
// in one pass. Greedy generations are bitwise identical to plain decoding;
// stochastic ones keep their exact token distribution. Backends without the
// verification surface ignore the option. Read sp.Stats afterwards for
// acceptance counters.
func WithSpeculative(sp *Speculative) GenOption { return sample.WithSpeculative(sp) }

// ---- Speculative decoding ----

// Speculative is the speculative-decoding driver: K is the draft depth,
// Drafter the proposal model (see DistillDrafter), Stats the accumulated
// acceptance counters.
type Speculative = sample.Speculative

// Drafter proposes draft-token distributions for speculative decoding.
type Drafter = sample.Drafter

// SpecStats counts speculative-decoding rounds, drafted and accepted tokens,
// and the acceptance-length histogram.
type SpecStats = sample.SpecStats

// DistillDrafter trains an order-N n-gram proposal model on text sampled
// from m itself (self-speculation: no corpus needed beyond the checkpoint)
// and returns it as a Drafter for WithSpeculative or ServerConfig.Drafter.
func DistillDrafter(m LanguageModel, order, tokens int, seed uint64) Drafter {
	return lm.DistillDrafter(m, order, tokens, seed)
}

// Token is one streamed generation event: the index-th sampled token, its
// vocabulary id, and the decoded text piece it contributes. Concatenating
// the pieces of a generation yields exactly the final text.
type Token = sample.Token

// LanguageModel is the backend-agnostic encode/step/decode contract of the
// generation API: the trained transformer pipeline (*LLM) satisfies it, as
// do the §5 ladder substrates trained via TrainBackend, so evaluation,
// serving (single-sequence mode), and the CLIs accept any backend.
type LanguageModel = lm.LanguageModel

// Gen runs one generation over any backend with the unified options; for a
// *LLM it is identical to model.Gen.
func Gen(m LanguageModel, prompt string, opts ...GenOption) (GenResult, error) {
	return lm.Gen(m, prompt, opts...)
}

// Stream is Gen with per-token delivery through onToken.
func Stream(ctx context.Context, m LanguageModel, prompt string, onToken func(Token) error, opts ...GenOption) (GenResult, error) {
	return lm.Stream(ctx, m, prompt, onToken, opts...)
}

// TrainBackend trains one rung of the §5 model ladder on lines and returns
// it behind the LanguageModel interface. Recognized names: "ngram", "ffn",
// "rnn", and "transformer" (the full pipeline with cfg defaults).
func TrainBackend(name string, lines []string, seed uint64) (LanguageModel, error) {
	if name == "transformer" {
		cfg := DefaultConfig()
		cfg.Seed = seed
		model, _, err := Train(lines, cfg)
		return model, err
	}
	return lm.TrainBackend(name, lines, seed)
}

// SyntheticCorpus samples n sentences of English-like PCFG text — the
// repository's stand-in for a natural-language corpus.
func SyntheticCorpus(n int, seed uint64) []string {
	return corpus.PCFGText(grammar.TinyEnglish(), n, 10, mathx.NewRNG(seed))
}

// ---- Serving ----

// ServerConfig tunes the request-batching generation service; the zero
// value selects sensible defaults (batch of 8, 2ms coalescing window,
// 32-token prefill chunks). PrefillChunk bounds how much of a new request's
// prompt is ingested between decode steps, so long prompts never stall
// in-flight streams by more than one chunk.
type ServerConfig = serve.Config

// GenRequest is one generation job for a Server, with per-request sampling
// strategy, seed, token budget, and stop behavior — the struct form of the
// unified generation options.
type GenRequest = serve.Request

// NewGenRequest builds a GenRequest from the unified functional options.
func NewGenRequest(prompt string, opts ...GenOption) GenRequest {
	return serve.NewRequest(prompt, opts...)
}

// GenResult is a finished generation — the same shape whether it came from
// a direct Gen call or through a Server.
type GenResult = serve.Result

// ServerStats is a snapshot of Server throughput counters, including the
// prompt/decode split (PromptTokens vs DecodeTokens), the histogram of
// prefill chunk sizes, and — when ServerConfig.Speculate is set — the
// speculative acceptance counters and acceptance-length histogram, so
// prompt-ingestion, generation, and speculation are separately observable.
type ServerStats = serve.Stats

// ErrServerClosed is returned for requests submitted to a closed Server.
var ErrServerClosed = serve.ErrClosed

// Server is a batched generation service over a trained model: concurrent
// Generate calls are coalesced into batched forward passes that share each
// decoding step's matrix work, while every request keeps its own sampling
// parameters and context-cancellation path. Prompts are ingested through
// the chunked prefill fast path (whole chunks as matrix-matrix work,
// interleaved with decode steps in bounded pieces). Results are identical
// to the corresponding unbatched LLM.Generate call.
type Server struct {
	s *serve.Server
}

// NewServer starts a generation server over model. Close it when done.
func NewServer(model *LLM, cfg ServerConfig) *Server {
	return &Server{s: serve.New(model, cfg)}
}

// NewBackendServer starts a generation server over any LanguageModel: the
// transformer pipeline gets the continuous-batching loop, every other
// backend an equivalent single-sequence loop with the same request,
// streaming, cancellation, and stats semantics.
func NewBackendServer(m LanguageModel, cfg ServerConfig) *Server {
	return &Server{s: serve.NewBackend(m, cfg)}
}

// Generate batches a free-running generation of n tokens, equivalent to
// LLM.Generate(prompt, n, strat, seed) but safe to call from any number of
// goroutines concurrently.
//
// Deprecated: use Gen with functional options, or Do with a GenRequest.
func (s *Server) Generate(ctx context.Context, prompt string, n int, strat Strategy, seed uint64) (string, error) {
	return s.s.Generate(ctx, prompt, n, strat, seed)
}

// Gen submits a generation built from the unified functional options and
// blocks until it completes.
func (s *Server) Gen(ctx context.Context, prompt string, opts ...GenOption) (GenResult, error) {
	return s.s.Gen(ctx, prompt, opts...)
}

// Do submits a fully specified generation request.
func (s *Server) Do(ctx context.Context, req GenRequest) (GenResult, error) {
	return s.s.Do(ctx, req)
}

// Validate reports whether req would be accepted by Do/Stream, without
// submitting it — front ends use it to reject bad requests before
// committing to a response (e.g. before writing streaming headers).
func (s *Server) Validate(req GenRequest) error { return s.s.Validate(req) }

// Stream is Do with per-token delivery: onToken receives every sampled
// token as its decoding step completes; the final text is bitwise identical
// to the unbatched path for the same request.
func (s *Server) Stream(ctx context.Context, req GenRequest, onToken func(Token) error) (GenResult, error) {
	return s.s.Stream(ctx, req, onToken)
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats { return s.s.Stats() }

// Close stops the batching loop; pending requests fail with ErrServerClosed.
func (s *Server) Close() { s.s.Close() }

// Generator is the model interface of the evaluation harness.
type Generator = eval.Generator

// Completer adapts any LanguageModel to the evaluation harness's Generator
// interface (greedy, stop-at-EOS decoding) — *LLM satisfies Generator
// directly, so this is mainly for the non-transformer backends.
func Completer(m LanguageModel) Generator { return lm.Completer{M: m} }

// Task is a named benchmark task.
type Task = eval.Task

// BenchmarkSuite returns the default synthetic task suite (§4's stand-in
// for BIG-bench).
func BenchmarkSuite(seed uint64) []Task {
	return eval.Suite(mathx.NewRNG(seed))
}

// ScoreTask scores exact-match accuracy of g on task with the given number
// of in-context examples per item.
func ScoreTask(g Generator, task Task, shots int, seed uint64) float64 {
	return eval.ScoreTask(g, task, eval.PromptConfig{Shots: shots}, mathx.NewRNG(seed))
}

// Table1 returns the paper's Table 1 rows (published LLM sizes) with the
// 12·D·p² estimate available per row.
func Table1() []scaling.ModelRow { return scaling.Table1() }

// CountParameters returns the exact trainable-parameter count for a model
// configuration.
func CountParameters(cfg ModelConfig) int { return transformer.CountParameters(cfg) }
