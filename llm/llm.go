// Package llm is the public API of this repository — a pure-Go, stdlib-only
// reproduction of the systems described in "Large Language Models:
// Principles and Practice" (the LLM tutorial literature: statistical
// language models, the transformer recipe, scaling laws, in-context
// learning, and interpretability probes).
//
// The package re-exports the supported surface of the internal substrates:
//
//   - Pipeline: corpus → tokenizer → transformer → training → sampling
//     (internal/core), with data-parallel training via Config.Workers,
//   - Model configuration (internal/transformer) and sampling strategies
//     (internal/sample),
//   - Server, the request-batching generation service (internal/serve),
//   - The evaluation harness (internal/eval),
//   - Experiment entry points for the paper's tables and figures
//     (internal/scaling, internal/icl).
//
// Quickstart (see the Example functions for runnable versions):
//
//	lines := llm.SyntheticCorpus(500, 42)
//	model, _, err := llm.Train(lines, llm.DefaultConfig())
//	if err != nil { ... }
//	text, _ := model.Generate("the king", 8, llm.Temperature(0.8), 1)
//
// To serve concurrent traffic, wrap the model in a Server: requests are
// coalesced into batched forward passes while preserving the exact output
// of the unbatched calls:
//
//	srv := llm.NewServer(model, llm.ServerConfig{})
//	defer srv.Close()
//	text, err := srv.Generate(ctx, "the king", 8, llm.Temperature(0.8), 1)
package llm

import (
	"context"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/scaling"
	"repro/internal/serve"
	"repro/internal/transformer"
)

// LLM is a trained language model (tokenizer + transformer).
type LLM = core.LLM

// Config assembles pipeline hyperparameters.
type Config = core.Config

// ModelConfig is the transformer architecture configuration (§6 of the
// paper: dimension p, depth D, heads H, window L).
type ModelConfig = transformer.Config

// Tokenizer kinds.
const (
	WordTok = core.WordTok
	CharTok = core.CharTok
	BPETok  = core.BPETok
)

// Positional-embedding kinds.
const (
	PosSinusoidal = transformer.PosSinusoidal
	PosLearned    = transformer.PosLearned
	PosNone       = transformer.PosNone
)

// Activations.
const (
	ReLU = nn.ReLU
	GELU = nn.GELU
	Tanh = nn.Tanh
)

// DefaultConfig returns a laptop-scale pipeline configuration good for the
// examples: word tokenizer, 2-block pre-LN transformer.
func DefaultConfig() Config {
	return Config{
		Tokenizer: WordTok,
		Model: ModelConfig{
			Dim: 32, Layers: 2, Heads: 2, Window: 16,
			Pos: PosLearned, Act: GELU,
		},
		Steps: 400, BatchSize: 4, LR: 0.003, Seed: 7,
	}
}

// Train builds a tokenizer from lines and trains a transformer LM.
// The returned TrainingCurve records per-step loss.
func Train(lines []string, cfg Config) (*LLM, *TrainingCurve, error) {
	model, res, err := core.Train(lines, cfg)
	if err != nil {
		return nil, nil, err
	}
	return model, &TrainingCurve{res: res}, nil
}

// TrainingCurve exposes the recorded optimization trajectory.
type TrainingCurve struct {
	res interface{ FinalTrainLoss() float64 }
}

// FinalLoss returns the last training loss.
func (c *TrainingCurve) FinalLoss() float64 { return c.res.FinalTrainLoss() }

// Strategy selects how tokens are sampled (Eq. 8 of the paper and its
// truncated variants).
type Strategy = sample.Strategy

// Greedy returns argmax decoding (the β → ∞ limit of Eq. 8).
func Greedy() Strategy { return sample.Greedy{} }

// Temperature returns Boltzmann sampling at temperature t.
func Temperature(t float64) Strategy { return sample.Temperature{T: t} }

// TopK returns top-k sampling at temperature t.
func TopK(k int, t float64) Strategy { return sample.TopK{K: k, T: t} }

// TopP returns nucleus sampling with mass p at temperature t.
func TopP(p, t float64) Strategy { return sample.TopP{P: p, T: t} }

// SyntheticCorpus samples n sentences of English-like PCFG text — the
// repository's stand-in for a natural-language corpus.
func SyntheticCorpus(n int, seed uint64) []string {
	return corpus.PCFGText(grammar.TinyEnglish(), n, 10, mathx.NewRNG(seed))
}

// ---- Serving ----

// ServerConfig tunes the request-batching generation service; the zero
// value selects sensible defaults (batch of 8, 2ms coalescing window).
type ServerConfig = serve.Config

// GenRequest is one generation job for a Server, with per-request sampling
// strategy, seed, token budget, and stop behavior.
type GenRequest = serve.Request

// GenResult is a finished Server generation.
type GenResult = serve.Result

// ServerStats is a snapshot of Server throughput counters.
type ServerStats = serve.Stats

// ErrServerClosed is returned for requests submitted to a closed Server.
var ErrServerClosed = serve.ErrClosed

// Server is a batched generation service over a trained model: concurrent
// Generate calls are coalesced into batched forward passes that share each
// decoding step's matrix work, while every request keeps its own sampling
// parameters and context-cancellation path. Results are identical to the
// corresponding unbatched LLM.Generate call.
type Server struct {
	s *serve.Server
}

// NewServer starts a generation server over model. Close it when done.
func NewServer(model *LLM, cfg ServerConfig) *Server {
	return &Server{s: serve.New(model, cfg)}
}

// Generate batches a free-running generation of n tokens, equivalent to
// LLM.Generate(prompt, n, strat, seed) but safe to call from any number of
// goroutines concurrently.
func (s *Server) Generate(ctx context.Context, prompt string, n int, strat Strategy, seed uint64) (string, error) {
	return s.s.Generate(ctx, prompt, n, strat, seed)
}

// Do submits a fully specified generation request.
func (s *Server) Do(ctx context.Context, req GenRequest) (GenResult, error) {
	return s.s.Do(ctx, req)
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats { return s.s.Stats() }

// Close stops the batching loop; pending requests fail with ErrServerClosed.
func (s *Server) Close() { s.s.Close() }

// Generator is the model interface of the evaluation harness.
type Generator = eval.Generator

// Task is a named benchmark task.
type Task = eval.Task

// BenchmarkSuite returns the default synthetic task suite (§4's stand-in
// for BIG-bench).
func BenchmarkSuite(seed uint64) []Task {
	return eval.Suite(mathx.NewRNG(seed))
}

// ScoreTask scores exact-match accuracy of g on task with the given number
// of in-context examples per item.
func ScoreTask(g Generator, task Task, shots int, seed uint64) float64 {
	return eval.ScoreTask(g, task, eval.PromptConfig{Shots: shots}, mathx.NewRNG(seed))
}

// Table1 returns the paper's Table 1 rows (published LLM sizes) with the
// 12·D·p² estimate available per row.
func Table1() []scaling.ModelRow { return scaling.Table1() }

// CountParameters returns the exact trainable-parameter count for a model
// configuration.
func CountParameters(cfg ModelConfig) int { return transformer.CountParameters(cfg) }
