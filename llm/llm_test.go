package llm_test

import (
	"context"
	"strings"
	"testing"

	"repro/llm"
)

func TestQuickstartFlow(t *testing.T) {
	lines := llm.SyntheticCorpus(250, 42)
	if len(lines) != 250 {
		t.Fatalf("corpus size %d", len(lines))
	}
	cfg := llm.DefaultConfig()
	cfg.Steps = 120
	model, curve, err := llm.Train(lines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if curve.FinalLoss() <= 0 {
		t.Errorf("final loss = %v", curve.FinalLoss())
	}
	losses := curve.Losses()
	if len(losses) != cfg.Steps {
		t.Fatalf("Losses has %d entries, want one per step (%d)", len(losses), cfg.Steps)
	}
	if losses[len(losses)-1] != curve.FinalLoss() {
		t.Errorf("Losses[-1] = %v != FinalLoss %v", losses[len(losses)-1], curve.FinalLoss())
	}
	out, err := model.Generate("the king", 6, llm.Temperature(0.8), 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = out // may be empty if EOS sampled; API contract is no error

	// The unified options API reproduces the positional call bitwise.
	res, err := model.Gen("the king",
		llm.WithMaxTokens(6), llm.WithStrategy(llm.Temperature(0.8)), llm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != out {
		t.Errorf("Gen %q != Generate %q", res.Text, out)
	}

	// Streaming delivers pieces that concatenate to the same final text.
	var streamed strings.Builder
	sres, err := model.Stream(context.Background(), "the king", func(tok llm.Token) error {
		streamed.WriteString(tok.Text)
		return nil
	}, llm.WithMaxTokens(6), llm.WithStrategy(llm.Temperature(0.8)), llm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if sres.Text != out || streamed.String() != out {
		t.Errorf("streamed %q / pieces %q != %q", sres.Text, streamed.String(), out)
	}
}

// TestBackendLadderThroughPublicAPI trains two non-transformer backends,
// generates from both through the unified API, and runs the unchanged eval
// harness against them.
func TestBackendLadderThroughPublicAPI(t *testing.T) {
	lines := llm.SyntheticCorpus(120, 11)
	for _, name := range []string{"ngram", "ffn"} {
		backend, err := llm.TrainBackend(name, lines, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := llm.Gen(backend, "the king", llm.WithMaxTokens(5), llm.WithSeed(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tokens) != 5 {
			t.Errorf("%s: %d tokens, want 5", name, len(res.Tokens))
		}
		task := llm.BenchmarkSuite(1)[0]
		task.Items = task.Items[:6] // keep the public smoke test fast
		acc := llm.ScoreTask(llm.Completer(backend), task, 1, 2)
		if acc < 0 || acc > 1 {
			t.Errorf("%s: accuracy %v out of range", name, acc)
		}
	}
	if _, err := llm.TrainBackend("bogus", lines, 1); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestPublicBenchmarkSuite(t *testing.T) {
	tasks := llm.BenchmarkSuite(1)
	if len(tasks) < 5 {
		t.Fatalf("suite has %d tasks", len(tasks))
	}
	names := map[string]bool{}
	for _, task := range tasks {
		names[task.Name] = true
	}
	for _, want := range []string{"copy", "reverse", "arithmetic", "negation", "composition"} {
		if !names[want] {
			t.Errorf("missing task %q", want)
		}
	}
}

func TestPublicTable1(t *testing.T) {
	rows := llm.Table1()
	found := false
	for _, r := range rows {
		if r.Name == "GPT-3" {
			found = true
			if est := r.Estimate(); est < 150e9 || est > 200e9 {
				t.Errorf("GPT-3 estimate = %g", est)
			}
		}
	}
	if !found {
		t.Error("GPT-3 missing from Table 1")
	}
}

func TestCountParameters(t *testing.T) {
	cfg := llm.ModelConfig{Vocab: 100, Dim: 16, Layers: 2, Heads: 2, Window: 8,
		Pos: llm.PosLearned, Act: llm.GELU}
	if n := llm.CountParameters(cfg); n <= 0 {
		t.Errorf("param count = %d", n)
	}
}

func TestStrategiesConstructible(t *testing.T) {
	for _, s := range []llm.Strategy{llm.Greedy(), llm.Temperature(1), llm.TopK(5, 1), llm.TopP(0.9, 1)} {
		if s == nil {
			t.Fatal("nil strategy")
		}
	}
}

func TestCorpusLooksEnglishLike(t *testing.T) {
	lines := llm.SyntheticCorpus(50, 3)
	joined := strings.Join(lines, " ")
	if !strings.Contains(joined, "the") {
		t.Error("corpus has no determiners")
	}
}
