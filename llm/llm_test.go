package llm_test

import (
	"strings"
	"testing"

	"repro/llm"
)

func TestQuickstartFlow(t *testing.T) {
	lines := llm.SyntheticCorpus(250, 42)
	if len(lines) != 250 {
		t.Fatalf("corpus size %d", len(lines))
	}
	cfg := llm.DefaultConfig()
	cfg.Steps = 120
	model, curve, err := llm.Train(lines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if curve.FinalLoss() <= 0 {
		t.Errorf("final loss = %v", curve.FinalLoss())
	}
	out, err := model.Generate("the king", 6, llm.Temperature(0.8), 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = out // may be empty if EOS sampled; API contract is no error
}

func TestPublicBenchmarkSuite(t *testing.T) {
	tasks := llm.BenchmarkSuite(1)
	if len(tasks) < 5 {
		t.Fatalf("suite has %d tasks", len(tasks))
	}
	names := map[string]bool{}
	for _, task := range tasks {
		names[task.Name] = true
	}
	for _, want := range []string{"copy", "reverse", "arithmetic", "negation", "composition"} {
		if !names[want] {
			t.Errorf("missing task %q", want)
		}
	}
}

func TestPublicTable1(t *testing.T) {
	rows := llm.Table1()
	found := false
	for _, r := range rows {
		if r.Name == "GPT-3" {
			found = true
			if est := r.Estimate(); est < 150e9 || est > 200e9 {
				t.Errorf("GPT-3 estimate = %g", est)
			}
		}
	}
	if !found {
		t.Error("GPT-3 missing from Table 1")
	}
}

func TestCountParameters(t *testing.T) {
	cfg := llm.ModelConfig{Vocab: 100, Dim: 16, Layers: 2, Heads: 2, Window: 8,
		Pos: llm.PosLearned, Act: llm.GELU}
	if n := llm.CountParameters(cfg); n <= 0 {
		t.Errorf("param count = %d", n)
	}
}

func TestStrategiesConstructible(t *testing.T) {
	for _, s := range []llm.Strategy{llm.Greedy(), llm.Temperature(1), llm.TopK(5, 1), llm.TopP(0.9, 1)} {
		if s == nil {
			t.Fatal("nil strategy")
		}
	}
}

func TestCorpusLooksEnglishLike(t *testing.T) {
	lines := llm.SyntheticCorpus(50, 3)
	joined := strings.Join(lines, " ")
	if !strings.Contains(joined, "the") {
		t.Error("corpus has no determiners")
	}
}
